// Event-driven simulation kernel of the TimingEngine.
//
// The loop processes one wakeup cycle with the exact per-cycle semantics
// shared with the cycle-stepped oracle (step_cycle), then
//
//   1. proposes every statically-known future event into an EventHorizon:
//      CVA6 becoming free, the sequencer front's REQI arrival, queue-front
//      completion times, reduction end-of-phase forecasts, and unit-head
//      start latencies;
//   2. fast-forwards every unit head across the gap with closed-form
//      multi-cycle advancement (piecewise-linear pursuit of the chaining
//      caps), recording compressed segments in each LaggedCounter;
//      completions discovered on queue fronts shrink the window;
//   3. accrues CVA6 stall counters in bulk (the stall cause can only
//      change at a wakeup) and jumps t to the horizon.
//
// Exactness argument, in brief: between wakeups no instruction can be
// issued, dispatched, or retired (all three are gated on events the
// horizon knows), so the only evolving state is the per-head produced /
// bytes_done counters, whose per-cycle recurrence
//
//   produced(u) = min(cap(u), produced(u-1) + quota(u))
//
// with a non-decreasing cap has the closed form min(own-line, cap) inside
// any span where both sides are linear. Heads are advanced in ascending
// instruction id, so every producer's history is fully extended before a
// consumer linearises its cap from it. Fractional-rate corners (the
// unpipelined divider chained onto live producers) fall back to per-cycle
// replay of the shared advance functions, which is slower but identical
// by construction.
#include <algorithm>

#include "cluster/vlsu.hpp"
#include "common/contracts.hpp"
#include "isa/disasm.hpp"
#include "machine/timing.hpp"

namespace araxl {
namespace {

/// ceil(a / b) for positive b.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// First k >= 1 with vx + sx*k < vb + sb*k given vx >= vb and sx < sb
/// (the cycle offset at which line x dips below line b).
constexpr std::uint64_t cross_after(std::uint64_t vb, std::uint64_t sb,
                                    std::uint64_t vx, std::uint64_t sx) {
  return (vx - vb) / (sb - sx) + 1;
}

}  // namespace

RunStats TimingEngine::run_event_driven(const Program& prog) {
  reset_run(prog);
  prepare_loop_batching();
  Cycle t = 0;
  while (!drained()) {
    step_cycle(t);
    // Attribute the wakeup cycle itself from its exact post-step state
    // (the oracle does the same after every step_cycle).
    attribute_range(t, t);
    watchdog_.note_wakeup();
    if (trace_ != nullptr && trace_->markers_enabled()) {
      trace_->mark(t, SimMarkerKind::kWakeup, pool_.active());
    }
    if (metrics_ != nullptr) metrics_account_units(t, 1);
    if (control_ != nullptr) control_->poll(watchdog_.wakeups_total());
    if (drained()) {
      ++t;
      break;
    }
    if (watchdog_.stuck()) fail_deadlock(t);
    if (!loop_regions_.empty() && loop_checkpoint(&t) && drained()) {
      // A batch can consume the program's final full periods; mirror the
      // post-step drain exit above (state is post-step at the new t).
      ++t;
      break;
    }

    EventHorizon horizon;
    horizon.reset(t);
    propose_discrete_events(t, &horizon);
    Cycle wend_excl = horizon.next();
    if (wend_excl == t + 1) {
      // Empty window: the very next cycle is already an event, so there is
      // nothing to fast-forward (heads advance inside step_cycle).
      t = wend_excl;
      continue;
    }
    fast_forward_heads(t, &wend_excl);
    if (wend_excl == kNeverCycle) fail_deadlock(t);

    if (wend_excl > t + 1) {
      // The oracle would have re-evaluated CVA6 on every skipped cycle and
      // hit the same stall (its cause can only clear at a wakeup).
      const Cycle skipped = wend_excl - t - 1;
      if (cva6_stall_ == Cva6Stall::kScalarWait) {
        stats_.scalar_wait_cycles += skipped;
      } else if (cva6_stall_ == Cva6Stall::kSeqFull) {
        stats_.issue_stall_cycles += skipped;
      }
      // Unit queue membership is constant across the skipped window (no
      // dispatch/retire between wakeups), so the whole gap is attributed
      // from the post-step state in one call.
      if (metrics_ != nullptr) metrics_account_units(t + 1, skipped);
      // Same argument for the stall taxonomy: classification inputs are
      // window-constant (or monotone-stable), and per-cycle production is
      // replayed from the heads' tapes — bit-identical to the oracle's
      // per-cycle attribution of the same span.
      attribute_range(t + 1, wend_excl - 1);
    }
    t = wend_excl;
  }
  stats_.cycles = t;
  stats_.wakeups_total = watchdog_.wakeups_total();
  {
    std::uint64_t slots = stats_.fpu_busy_slots;
    for (std::size_t r = 0; r < kNumStallReasons; ++r) slots += stats_.stall_cycles[r];
    debug_check(slots == stats_.cycles * stats_.total_lanes * 8,
                "stall taxonomy does not partition the slot universe");
  }
  metrics_end_run();
  return stats_;
}

void TimingEngine::propose_discrete_events(Cycle t, EventHorizon* horizon) {
  // CVA6's next action, unless it is blocked on machine state (then the
  // unblocking retire/dispatch below is the event).
  if (pc_ < prog_->ops.size() && cva6_stall_ == Cva6Stall::kNone) {
    horizon->propose(std::max(cva6_free_, t + 1));
  }
  // Sequencer front: REQI arrival, or the next dispatch attempt right
  // after a successful one (back-to-back dispatch).
  if (!seq_.empty()) {
    const Cycle arrive = seq_.front().arrive_at;
    if (arrive > t) {
      horizon->propose(arrive);
    } else if (dispatched_this_cycle_) {
      horizon->propose(t + 1);
    }
  }
  for (std::size_t u = 1; u < kNumUnits; ++u) {
    const auto& q = unitq_[u];
    if (q.empty()) continue;
    const Inflight& front = pool_.at(q.front());
    if (front.completed_at != kNeverCycle) {
      horizon->propose(front.completed_at);
    } else if (front.spec->is_reduction && front.finished_producing()) {
      // Phases walk lazily; the forecast pins the retire cycle.
      horizon->propose(front.projected_done);
    }
    for (const std::uint32_t slot : q) {
      const Inflight& instr = pool_.at(slot);
      if (instr.finished_producing()) continue;
      if (instr.start_at > t) horizon->propose(instr.start_at);
      break;  // only the first unfinished instruction (the head) executes
    }
  }
}

void TimingEngine::fast_forward_heads(Cycle t, Cycle* wend_excl) {
  ff_processed_.clear();
  const auto processed = [&](std::uint32_t slot) {
    return std::find(ff_processed_.begin(), ff_processed_.end(), slot) !=
           ff_processed_.end();
  };

  // Advance heads in ascending instruction id so every producer's history
  // is fully extended before any consumer linearises a cap from it.
  // Cascades (a head finishing mid-window promotes its queue successor)
  // only ever introduce larger ids, so the scan order stays ascending.
  for (;;) {
    Inflight* best = nullptr;
    std::uint32_t best_slot = 0;
    std::size_t best_unit = 0;
    Cycle best_from = 0;
    for (std::size_t u = 1; u < kNumUnits; ++u) {
      const Inflight* prev = nullptr;
      for (const std::uint32_t slot : unitq_[u]) {
        Inflight& instr = pool_.at(slot);
        if (instr.finished_producing()) {
          prev = &instr;
          continue;
        }
        if (!processed(slot) && (best == nullptr || instr.id < best->id)) {
          // A head only starts executing the cycle after its predecessor
          // finished producing (tick_unit picks the first unfinished).
          Cycle eligible = t + 1;
          if (prev != nullptr && prev->finished_at != kNeverCycle &&
              prev->finished_at + 1 > eligible) {
            eligible = prev->finished_at + 1;
          }
          best = &instr;
          best_slot = slot;
          best_unit = u;
          best_from = std::max(eligible, instr.advanced_until + 1);
        }
        break;  // only the first unfinished instruction per queue
      }
    }
    if (best == nullptr) break;
    ff_processed_.push_back(best_slot);

    const Cycle to = *wend_excl == kNeverCycle ? kNeverCycle : *wend_excl - 1;
    if (to != kNeverCycle && best_from > to) continue;
    advance_span(*best, best_from, to);

    if (best->finished_producing() &&
        unitq_[best_unit].front() == best_slot) {
      // A front completion retires (and unblocks dispatch / hazards /
      // CVA6), so the window must not skip past it. Non-front completions
      // stay gated behind their queue front, which is already an event.
      const Cycle ev = best->spec->is_reduction ? best->projected_done
                                                : best->completed_at;
      if (ev < *wend_excl) *wend_excl = ev;
    }
  }
}

void TimingEngine::advance_span(Inflight& instr, Cycle from, Cycle to) {
  if (from < instr.start_at) from = instr.start_at;
  if (to != kNeverCycle && from > to) {
    if (to > instr.advanced_until) instr.advanced_until = to;
    return;
  }
  switch (instr.unit) {
    case Unit::kLoad:
      if (elementwise_mem_op(instr.in.op)) advance_span_arith(instr, from, to);
      else advance_span_load(instr, from, to);
      break;
    case Unit::kStore:
      if (elementwise_mem_op(instr.in.op)) advance_span_arith(instr, from, to);
      else advance_span_store(instr, from, to);
      break;
    default: advance_span_arith(instr, from, to); break;
  }
}

TimingEngine::CapLine TimingEngine::dep_cap(const Dep& d, const Inflight& c,
                                            Cycle u) const {
  const Inflight* p = pool_.get(d.slot, d.producer);
  if (p == nullptr) return CapLine{c.vl, 0, kNeverCycle, false};
  if (d.full) {
    if (p->finished_at == kNeverCycle) {
      // The producer was fast-forwarded first (smaller id); if it did not
      // finish, it cannot finish anywhere inside this window either.
      return CapLine{0, 0, kNeverCycle, false};
    }
    const Cycle vis = p->finished_at + (d.producer_ticks_first ? 0 : 1);
    if (u >= vis) return CapLine{c.vl, 0, kNeverCycle, false};
    return CapLine{0, 0, vis - 1, false};
  }
  if (u < d.lag) {
    // Before any lagged history exists the raw count reads zero.
    const std::int64_t adj = -d.offset;
    return CapLine{adj > 0 ? static_cast<std::uint64_t>(adj) : 0, 0,
                   d.lag - 1, false};
  }
  const LaggedCounter::Piece piece = p->hist.piece_at(u - d.lag);
  if (piece.num > 0 && piece.den != 1) return CapLine{0, 0, 0, true};
  std::uint64_t val = piece.value;
  std::uint64_t slope = 0;
  Cycle until = kNeverCycle;
  if (piece.num > 0) {
    slope = piece.num;
    until = piece.grow_until + d.lag;
  } else if (piece.change_at != kNeverCycle) {
    until = piece.change_at + d.lag - 1;
  }
  if (d.offset != 0) {
    const std::int64_t adj = static_cast<std::int64_t>(val) - d.offset;
    if (adj >= 0) {
      val = static_cast<std::uint64_t>(adj);
    } else {
      // Clamped at zero until the producer count exceeds the offset.
      const std::uint64_t deficit = static_cast<std::uint64_t>(-adj);
      if (slope == 0) return CapLine{0, 0, until, false};
      const Cycle cross = u + ceil_div(deficit + 1, slope);
      return CapLine{0, 0, std::min(until, cross - 1), false};
    }
  }
  return CapLine{val, slope, until, false};
}

TimingEngine::CapLine TimingEngine::combined_cap(const Inflight& c, Cycle u,
                                                 Cycle /*to*/) const {
  // Pass 1: binding line — minimum value at u, ties broken towards the
  // smaller slope (that line stays the minimum going forward) — plus the
  // earliest expiry of any contributing linearisation. Folding keeps the
  // dep count unbounded (LMUL groups can fan out to many live producers).
  CapLine out{c.vl, 0, kNeverCycle, false};  // vl ceiling
  for (const Dep& d : c.deps) {
    const CapLine l = dep_cap(d, c, u);
    if (l.fractional) return l;
    if (l.until < out.until) out.until = l.until;
    if (l.value < out.value ||
        (l.value == out.value && l.slope < out.slope)) {
      out.value = l.value;
      out.slope = l.slope;
    }
  }
  if (out.slope == 0) return out;  // nothing can dip below a flat minimum
  // Pass 2: slower-growing lines may dip below the binding one later in
  // the span. (A tie in value with a smaller slope would have won pass 1,
  // so every remaining slower line sits strictly above the binding at u.)
  {
    const Cycle cross = u + cross_after(out.value, out.slope, c.vl, 0);
    if (cross - 1 < out.until) out.until = cross - 1;
  }
  for (const Dep& d : c.deps) {
    const CapLine l = dep_cap(d, c, u);
    if (l.slope >= out.slope) continue;
    const Cycle cross = u + cross_after(out.value, out.slope, l.value, l.slope);
    if (cross - 1 < out.until) out.until = cross - 1;
  }
  return out;
}

void TimingEngine::advance_span_arith(Inflight& instr, Cycle from, Cycle to) {
  const std::uint64_t r256 = head_rate256(instr);

  if ((r256 & 0xFF) != 0) {
    bool live_deps = false;
    for (const Dep& d : instr.deps) {
      if (pool_.get(d.slot, d.producer) != nullptr) live_deps = true;
    }
    if (!live_deps) {
      // Unthrottled fractional rate (divider/sqrt with no in-flight
      // producers): pure accumulator line.
      const Cycle cur = from - 1;
      const std::uint64_t p0 = instr.produced;
      const std::uint64_t acc0 = instr.rate_acc;
      const std::uint64_t need = 256 * (instr.vl - p0);
      const Cycle t_fin =
          cur + (need > acc0 ? ceil_div(need - acc0, r256) : 1);
      const Cycle end = to == kNeverCycle ? t_fin : std::min(t_fin, to);
      if (end < from) return;
      const std::uint64_t total =
          std::min(instr.vl, p0 + ((acc0 + (end - cur) * r256) >> 8));
      if (total > p0) {
        if (p0 == 0) {
          instr.first_result_at =
              cur + (256 > acc0 ? ceil_div(256 - acc0, r256) : 1);
        }
        const std::uint64_t v1 = p0 + ((acc0 + r256) >> 8);
        const Cycle hold = end == t_fin ? end - 1 : end;
        if (hold >= from) {
          instr.hist.record_ramp(from, v1, r256, 256, (acc0 + r256) & 0xFF,
                                 hold);
          if (instr.unit == Unit::kFpu) {
            instr.tape.record_ramp(from, v1, r256, 256, (acc0 + r256) & 0xFF,
                                   hold);
          }
        }
        if (end == t_fin) {
          instr.hist.record(t_fin, instr.vl);
          if (instr.unit == Unit::kFpu) instr.tape.record(t_fin, instr.vl);
        }
        account(instr.unit, instr, total - p0);
        instr.produced = total;
      }
      instr.rate_acc = (acc0 + (end - cur) * r256) & 0xFF;
      instr.advanced_until = std::max(instr.advanced_until, end);
      if (instr.finished_producing()) finish_producing(end, instr);
      return;
    }
    // Fractional rate chained onto live producers: exact per-cycle replay
    // of the shared advance function (rare: divider consuming in-flight
    // results).
    Cycle idle_since = from;
    for (Cycle u = from; to == kNeverCycle || u <= to; ++u) {
      const std::uint64_t before = instr.produced;
      advance_arith(u, instr);
      instr.advanced_until = u;
      if (instr.finished_producing()) return;
      if (instr.produced != before) idle_since = u;
      // In an unbounded window every producer history has already been
      // extended to its end; after a long idle stretch (far beyond any
      // accumulator period or chaining lag) no further progress can come
      // from inside the window — park until an outside event.
      if (to == kNeverCycle && u - idle_since > 4096) return;
    }
    return;
  }

  // Integer-rate fast path: piecewise-linear pursuit of the chaining caps.
  const std::uint64_t r_el = r256 >> 8;
  Cycle cur = from - 1;
  while ((to == kNeverCycle || cur < to) && !instr.finished_producing()) {
    const Cycle u1 = cur + 1;
    const CapLine cap = combined_cap(instr, u1, to);
    if (cap.fractional) {
      // Producer history with a fractional segment: replay the remainder.
      Cycle idle_since = u1;
      for (Cycle u = u1; to == kNeverCycle || u <= to; ++u) {
        const std::uint64_t before = instr.produced;
        advance_arith(u, instr);
        instr.advanced_until = u;
        if (instr.finished_producing()) return;
        if (instr.produced != before) idle_since = u;
        if (to == kNeverCycle && u - idle_since > 4096) return;
      }
      return;
    }

    // Binding line over [u1, seg_end]: min(own pursuit line, cap).
    const std::uint64_t vo = instr.produced + r_el;
    std::uint64_t vb;
    std::uint64_t sb;
    Cycle seg_end = cap.until;
    if (to != kNeverCycle && (seg_end == kNeverCycle || to < seg_end)) {
      seg_end = to;
    }
    if (vo < cap.value || (vo == cap.value && r_el <= cap.slope)) {
      vb = vo;
      sb = r_el;
      if (cap.slope < sb) {
        const Cycle cross = u1 + cross_after(vb, sb, cap.value, cap.slope);
        if (cross - 1 < seg_end) seg_end = cross - 1;
      }
    } else {
      vb = cap.value;
      sb = cap.slope;
      if (r_el < sb) {
        const Cycle cross = u1 + cross_after(vb, sb, vo, r_el);
        if (cross - 1 < seg_end) seg_end = cross - 1;
      }
    }

    if (sb == 0 && vb <= instr.produced) {
      // Stalled at the cap for the whole sub-span.
      if (seg_end == kNeverCycle) return;  // parked until an outside event
      cur = seg_end;
      continue;
    }

    bool finished = false;
    Cycle fin_at = 0;
    if (sb > 0) {
      const Cycle t_fin =
          vb >= instr.vl ? u1 : u1 + ceil_div(instr.vl - vb, sb);
      if (seg_end == kNeverCycle || t_fin <= seg_end) {
        seg_end = t_fin;
        finished = true;
        fin_at = t_fin;
      }
    } else if (vb >= instr.vl) {
      finished = true;
      fin_at = u1;
      seg_end = u1;
    }
    debug_check(seg_end != kNeverCycle, "unbounded growing segment");

    const std::uint64_t total =
        finished ? instr.vl : vb + sb * (seg_end - u1);
    if (total > instr.produced) {
      if (instr.produced == 0) {
        instr.first_result_at =
            vb >= 1 ? u1 : u1 + ceil_div(1 - vb, sb);
      }
      if (sb == 0) {
        instr.hist.record(u1, total);
        if (instr.unit == Unit::kFpu) instr.tape.record(u1, total);
      } else {
        const Cycle hold = finished ? fin_at - 1 : seg_end;
        if (hold >= u1 && vb + sb * (hold - u1) > instr.produced) {
          instr.hist.record_ramp(u1, vb, sb, 1, 0, hold);
          if (instr.unit == Unit::kFpu) {
            instr.tape.record_ramp(u1, vb, sb, 1, 0, hold);
          }
        }
        if (finished) {
          instr.hist.record(fin_at, instr.vl);
          if (instr.unit == Unit::kFpu) instr.tape.record(fin_at, instr.vl);
        }
      }
      account(instr.unit, instr, total - instr.produced);
      instr.produced = total;
    }
    cur = seg_end;
    if (finished) {
      instr.advanced_until = std::max(instr.advanced_until, fin_at);
      finish_producing(fin_at, instr);
      return;
    }
  }
  if (to != kNeverCycle && to > instr.advanced_until) instr.advanced_until = to;
}

void TimingEngine::advance_span_load(Inflight& instr, Cycle from, Cycle to) {
  const std::uint64_t raw = instr.head_skew + instr.bytes_total;
  const std::uint64_t bus = glsu_.bus_bytes();
  const Cycle cur = from - 1;
  const std::uint64_t bd0 = instr.bytes_done;
  debug_check(bd0 < raw, "load span on a drained transfer");

  const Cycle t_full = cur + glsu_.cycles_for_bytes(raw - bd0);
  const Cycle end = to == kNeverCycle ? t_full : std::min(t_full, to);
  if (end < from) return;

  const std::uint64_t bytes_end =
      end >= t_full ? raw : bd0 + (end - cur) * bus;
  const std::uint64_t useful =
      bytes_end > instr.head_skew ? bytes_end - instr.head_skew : 0;
  const std::uint64_t new_produced =
      std::min<std::uint64_t>(instr.vl, useful / instr.ew);

  if (new_produced > instr.produced) {
    const std::uint64_t spc = bus / instr.ew;  // elements per full beat
    // First cycle with at least one whole useful element.
    Cycle fr = instr.produced == 0
                   ? cur + ceil_div(instr.head_skew + instr.ew - bd0, bus)
                   : from;
    if (instr.produced == 0) instr.first_result_at = fr;
    const Cycle hold = std::min(end, t_full - 1);
    if (hold >= fr) {
      const std::uint64_t v_fr =
          std::min<std::uint64_t>(instr.vl,
                                  (bd0 + (fr - cur) * bus - instr.head_skew) /
                                      instr.ew);
      instr.hist.record_ramp(fr, v_fr, spc, 1, 0, hold);
    }
    if (end >= t_full) instr.hist.record(t_full, new_produced);
    account(instr.unit, instr, new_produced - instr.produced);
    instr.produced = new_produced;
    if (instr.finished_producing()) instr.finished_at = t_full;
  }
  instr.bytes_done = bytes_end;
  if (instr.bytes_done >= raw && instr.finished_producing()) {
    instr.completed_at = t_full + lanes_.chain_lag(Unit::kLoad);
  }
  instr.advanced_until = std::max(instr.advanced_until, end);
}

void TimingEngine::advance_span_store(Inflight& instr, Cycle from, Cycle to) {
  const std::uint64_t raw = instr.head_skew + instr.bytes_total;
  const std::uint64_t bus = glsu_.bus_bytes();
  const std::uint64_t ew = instr.ew;
  Cycle cur = from - 1;

  while ((to == kNeverCycle || cur < to) && instr.bytes_done < raw) {
    const Cycle u1 = cur + 1;
    const CapLine cap = combined_cap(instr, u1, to);
    if (cap.fractional) {
      Cycle idle_since = u1;
      for (Cycle u = u1; to == kNeverCycle || u <= to; ++u) {
        const std::uint64_t before = instr.bytes_done;
        advance_store(u, instr);
        instr.advanced_until = u;
        if (instr.bytes_done >= raw) return;
        if (instr.bytes_done != before) idle_since = u;
        if (to == kNeverCycle && u - idle_since > 4096) return;
      }
      return;
    }

    // Lines in bytes at u1: own full-bandwidth pursuit, the sendable limit
    // from operand availability, and the raw-total ceiling. bytes_done
    // follows min(own, sendable, raw) inside a span where all are linear.
    struct Line {
      std::uint64_t v;
      std::uint64_t s;
    };
    const std::uint64_t snd_cap = instr.head_skew + cap.value * ew;
    const Line lines[3] = {
        {instr.bytes_done + bus, bus},
        {snd_cap < raw ? snd_cap : raw, snd_cap < raw ? cap.slope * ew : 0},
        {raw, 0},
    };
    std::size_t b = 0;
    for (std::size_t i = 1; i < 3; ++i) {
      if (lines[i].v < lines[b].v ||
          (lines[i].v == lines[b].v && lines[i].s < lines[b].s)) {
        b = i;
      }
    }
    const std::uint64_t vb = lines[b].v;
    const std::uint64_t sb = lines[b].s;
    Cycle seg_end = cap.until;
    if (to != kNeverCycle && (seg_end == kNeverCycle || to < seg_end)) {
      seg_end = to;
    }
    for (std::size_t i = 0; i < 3; ++i) {
      if (i == b || lines[i].s >= sb) continue;
      const Cycle cross = u1 + cross_after(vb, sb, lines[i].v, lines[i].s);
      if (cross - 1 < seg_end) seg_end = cross - 1;
    }

    if (sb == 0 && vb <= instr.bytes_done) {
      // Stalled on operand availability for the whole sub-span.
      if (seg_end == kNeverCycle) return;  // parked until an outside event
      cur = seg_end;
      continue;
    }

    bool done = false;
    Cycle done_at = 0;
    if (vb >= raw) {
      done = true;
      done_at = u1;
      seg_end = u1;
    } else if (sb > 0) {
      const Cycle t_raw = u1 + ceil_div(raw - vb, sb);
      if (seg_end == kNeverCycle || t_raw <= seg_end) {
        seg_end = t_raw;
        done = true;
        done_at = t_raw;
      }
    }
    debug_check(seg_end != kNeverCycle, "unbounded growing store segment");

    const std::uint64_t bytes_end = done ? raw : vb + sb * (seg_end - u1);
    const std::uint64_t useful =
        bytes_end > instr.head_skew ? bytes_end - instr.head_skew : 0;
    const std::uint64_t new_produced =
        std::min<std::uint64_t>(instr.vl, useful / ew);
    if (new_produced > instr.produced) {
      const std::uint64_t spc = sb / ew;  // bus and cap byte slopes divide ew
      if (instr.produced == 0) {
        instr.first_result_at =
            vb >= instr.head_skew + ew
                ? u1
                : u1 + ceil_div(instr.head_skew + ew - vb, sb);
      }
      if (spc == 0) {
        // Single jump to a higher constant line (sb == 0 with vb above the
        // current bytes_done, or a slope smaller than one element/cycle is
        // impossible here since byte slopes are multiples of ew).
        instr.hist.record(u1, new_produced);
      } else {
        // Ramp anchored at the first cycle whose bytes cover the skew.
        const Cycle anchor =
            vb >= instr.head_skew ? u1
                                  : u1 + ceil_div(instr.head_skew - vb, sb);
        const Cycle hold = done ? done_at - 1 : seg_end;
        if (hold >= anchor) {
          const std::uint64_t v_anchor =
              (vb + sb * (anchor - u1) - instr.head_skew) / ew;
          instr.hist.record_ramp(anchor, v_anchor, spc, 1, 0, hold);
        }
        if (done) instr.hist.record(done_at, new_produced);
      }
      account(instr.unit, instr, new_produced - instr.produced);
      instr.produced = new_produced;
    }
    instr.bytes_done = bytes_end;
    cur = seg_end;
    if (done) {
      if (instr.finished_producing()) instr.finished_at = done_at;
      instr.completed_at = done_at + lanes_.chain_lag(Unit::kStore);
      instr.advanced_until = std::max(instr.advanced_until, done_at);
      return;
    }
  }
  if (to != kNeverCycle && to > instr.advanced_until) instr.advanced_until = to;
}

// ---- steady-state loop batching ---------------------------------------------
//
// Exactness argument. A checkpoint is the deterministic instant "first
// wakeup whose post-step pc sits on a loop-period boundary". The snapshot
// serializes *everything* the engine's evolution reads, rebased to the
// checkpoint (cycle t, pc, next instruction id): CVA6 state, the captured
// vl/vtype, the sequencer queue, every in-flight instruction (shape,
// progress, chaining history, reduction phase, dependencies by relative
// id) and the register claim table. If two consecutive checkpoints
// serialize identically, the machine's evolution from the second mirrors
// its evolution from the first — shifted by (D cycles, P ops, dI ids) —
// provided the only non-serialized inputs also repeat:
//
//  * upcoming op signatures: guaranteed inside the precomputed periodic
//    region (signatures are compared field-wise, so adversarial hash
//    collisions cannot fake a loop);
//  * memory addresses. Addresses reach the timing model through exactly
//    two reads: head_skew(addr) at dispatch of a non-elementwise
//    (unit-stride) access, and the dispatch-time range-overlap test
//    against the other-kind unit queue. Each bounded memory op may
//    therefore follow its *own* per-position progression — the batcher
//    does not need one common delta — as long as, op by op, (a) the bus
//    phase addr % bus_bytes equals its period-earlier counterpart's
//    (head_skew repeats) and (b) every possible pairwise overlap outcome
//    equals the counterpart pair's. The candidate partners of op i are a
//    static superset of what can be queued when i dispatches: in-order
//    dispatch and retire make the other-kind queue a contiguous suffix of
//    the other-kind ops before i, at most unit_queue_depth deep; if every
//    pair in the superset repeats its outcome, whatever subset is live
//    repeats it too. prepare_loop_batching turns every violated check
//    into a *barrier* at the period boundary containing the op (a pair
//    whose counterpart falls before the region start is conservatively a
//    barrier as well), and a batch may cover [pc, pc+K*period) only when
//    that range is barrier-free. Barriers inside an already-recorded
//    window are irrelevant — its behavior is history, captured by the
//    snapshot — which is why recording continues across them (the early
//    boundaries of any load+store region carry conservative barriers from
//    out-of-region partners). Indexed accesses are exempt from both
//    checks: the timing model never reads their addresses (unknown
//    footprint => conservative conflict either way), and zero-vl ops
//    never enter the sequencer at all.
//
// Warmup fast-forward: a handful of serialized fields provably cannot
// influence evolution — issue/dispatch stamps are read only when writing
// trace records, and Pending::arrive_at / cva6_free_ are read only
// through `> t`-style predicates, so any value <= t is equivalent to any
// other. snapshot_state canonicalizes those (stamps move to a side
// `shadow` buffer when tracing is off; the predicate cycles are clamped
// to t) so two boundaries that differ only by such inert residue of the
// fill transient still compare equal, and short runs on wide machines
// engage ~12 iterations earlier. An engage whose raw shadow differed is
// counted as warmup_projected. The relabelling below shifts the raw
// fields rigidly, which preserves the equivalence (a cycle <= t stays
// <= t + shift), so measurements are identical either way — with tracing
// on, the stamps are compared exactly and the engine merely engages
// later.
//
// Under those conditions each batched window retires the recorded per-
// window stat delta, emits the recorded trace records (rebased, with the
// disassembly refetched from the real ops so addresses stay exact), and
// ends in the recorded state shifted once more — so applying K windows in
// closed form and relabelling the live window K periods forward lands on
// exactly the state the per-wakeup engine would have reached. Anything
// else — a vl tail (different vsetvli grant), a mid-loop vtype change, a
// drifting stall pattern — either breaks signature equality, the snapshot
// match, or the barrier-free requirement, and the engine simply keeps
// simulating per wakeup (a nested-loop row boundary clamps K to the
// barrier and re-arms on the far side instead of disabling the region).
// The EngineEquivalence fuzzers drive loop-heavy and adversarial
// variants of all of these through both engines.

namespace {

/// Rebased cycle encoding for snapshots (two words: sentinel flag + delta,
/// so kNeverCycle can never alias a legitimate rebased value).
void push_cycle_rel(std::vector<std::uint64_t>* out, Cycle x, Cycle base) {
  out->push_back(x == kNeverCycle ? 1 : 0);
  out->push_back(x == kNeverCycle
                     ? 0
                     : static_cast<std::uint64_t>(static_cast<std::int64_t>(x) -
                                                  static_cast<std::int64_t>(base)));
}

std::uint64_t rel_u64(std::uint64_t x, std::uint64_t base) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(x) -
                                    static_cast<std::int64_t>(base));
}

/// True for memory ops whose [lo, hi) footprint the dispatcher computes
/// from the instruction's address (the ops the batcher's address checks
/// must cover).
bool bounded_mem_op(Op op) {
  return op == Op::kVle || op == Op::kVse || op == Op::kVlse || op == Op::kVsse;
}

/// Which memory unit queue an op occupies (kNone for non-memory ops);
/// the dispatch-time conflict test scans the opposite queue.
Unit mem_unit(Op op) {
  switch (op) {
    case Op::kVle:
    case Op::kVlse:
    case Op::kVluxei: return Unit::kLoad;
    case Op::kVse:
    case Op::kVsse:
    case Op::kVsuxei: return Unit::kStore;
    default: return Unit::kNone;
  }
}

}  // namespace

void TimingEngine::prepare_loop_batching() {
  const std::size_t n = prog_->ops.size();
  op_keys_.reserve(n);
  for (const ProgOp& op : prog_->ops) {
    op_keys_.push_back(op_key(op, cfg_.effective_vlen()));
  }
  loop_regions_ = find_loop_regions(op_keys_);
  loop_barriers_.assign(loop_regions_.size(), {});
  loop_last_engageable_.assign(loop_regions_.size(), 0);
  if (loop_regions_.empty()) return;

  // Dispatch-time shape of every op, reproduced by the same walk tick_cva6
  // performs (the grant of the last vsetvli before the op). Zero-vl ops
  // never enter the sequencer, so they are invisible to dispatch and
  // excluded from every barrier check below.
  const std::size_t n_ops = prog_->ops.size();
  std::vector<std::uint64_t> op_vl(n_ops, 0);
  std::vector<unsigned> op_ew(n_ops, 8);
  {
    std::uint64_t vl = 0;
    Vtype vt{};
    for (std::size_t i = 0; i < n_ops; ++i) {
      const auto* v = std::get_if<VInstr>(&prog_->ops[i]);
      if (v == nullptr) continue;
      if (v->op == Op::kVsetvli) {
        vt = v->vtype;
        vl = vsetvl_result(cfg_.effective_vlen(), v->avl, vt);
      }
      op_vl[i] = vl;
      op_ew[i] = sew_bytes(vt.sew);
    }
  }

  const std::uint64_t bus = glsu_.bus_bytes();
  const auto overlaps = [&](std::size_t a, std::size_t b) {
    const auto& va = std::get<VInstr>(prog_->ops[a]);
    const auto& vb = std::get<VInstr>(prog_->ops[b]);
    std::uint64_t alo = 0;
    std::uint64_t ahi = 0;
    std::uint64_t blo = 0;
    std::uint64_t bhi = 0;
    mem_range(va, op_vl[a], op_ew[a], &alo, &ahi);
    mem_range(vb, op_vl[b], op_ew[b], &blo, &bhi);
    return alo < bhi && blo < ahi;
  };

  for (std::size_t ri = 0; ri < loop_regions_.size(); ++ri) {
    const LoopRegion& r = loop_regions_[ri];
    const std::size_t p = r.period;
    // Per period: bit 0 = any barrier, bit 1 = a genuine one (skew phase or
    // overlap-outcome change with in-region counterparts, as opposed to the
    // conservative partner-before-region-start case).
    const std::size_t num_periods = (r.end - r.start + p - 1) / p;
    std::vector<std::uint8_t> flags(num_periods, 0);
    // The candidate partner set for op i is the nearest unit_queue_depth
    // *in-region* opposite-unit ops before it. Partners wholly before the
    // region are irrelevant: engaging requires the liveness gate (every
    // queued op a full period into the region) and a rebased-index
    // snapshot match, which together put every queue entry at both window
    // boundaries at or past r.start — and a pre-region op never re-enters
    // a queue. Tracking the partner sets with a forward sweep keeps the
    // analysis O(ops x depth); a backward scan per op would walk to the
    // region start every time in regions with no opposite-unit ops of
    // their own (a pure-load inner loop after a store block).
    std::vector<std::size_t> recent[kNumUnits];
    for (std::size_t i = r.start; i < r.end; ++i) {
      const auto* v = std::get_if<VInstr>(&prog_->ops[i]);
      if (v == nullptr || op_vl[i] == 0) continue;
      const Unit u = mem_unit(v->op);
      if (u == Unit::kNone) continue;
      if (bounded_mem_op(v->op) && i >= r.start + p) {
        const std::size_t q = (i - r.start) / p;
        std::uint8_t f = 0;
        const auto& prev = std::get<VInstr>(prog_->ops[i - p]);
        // (a) head_skew repeats only if the bus phase does (unit-stride
        // ops; strided accesses are elementwise and never read head_skew).
        if (!elementwise_mem_op(v->op) && v->addr % bus != prev.addr % bus) {
          f = 3;
        }
        // (b) every candidate partner pair's overlap outcome must repeat.
        const Unit other = u == Unit::kLoad ? Unit::kStore : Unit::kLoad;
        for (const std::size_t j : recent[static_cast<std::size_t>(other)]) {
          if (j < p || j - p < r.start) {
            f |= 1;  // counterpart precedes the region: conservative barrier
            continue;
          }
          if (!bounded_mem_op(std::get<VInstr>(prog_->ops[j]).op)) {
            continue;  // indexed: conservative conflict both times
          }
          if (overlaps(i, j) != overlaps(i - p, j - p)) f = 3;
        }
        flags[q] |= f;
      }
      auto& own = recent[static_cast<std::size_t>(u)];
      own.push_back(i);
      if (own.size() > cfg_.unit_queue_depth) own.erase(own.begin());
    }

    auto& barriers = loop_barriers_[ri];
    for (std::size_t q = 1; q < num_periods; ++q) {
      if (flags[q] != 0) barriers.push_back(r.start + q * p);
    }
    for (std::size_t q = num_periods; q-- > 2;) {
      const std::size_t b = r.start + q * p;
      if (b + p <= r.end && flags[q] == 0) {
        loop_last_engageable_[ri] = b;
        break;
      }
    }

    // Static rejection telemetry: a genuine barrier that does not sit on a
    // detected nested-loop boundary means some op's address walk is
    // aperiodic — the region can never batch across it and the runtime
    // path never revisits dead boundaries (see the loop_checkpoint
    // early-out), so count the progression failure once up front. Barriers
    // that *are* the nest's outer-loop boundaries are expected: they clamp
    // batches at row ends (counted per engage as batch_clamps).
    bool genuine_non_nest = false;
    LoopNest nest;
    bool nest_computed = false;
    for (std::size_t q = 1; q < num_periods && !genuine_non_nest; ++q) {
      if ((flags[q] & 2) == 0) continue;
      if (!nest_computed) {
        nest = find_loop_nest(*prog_, r);
        nest_computed = true;
      }
      if (!nest.valid || (q - 1) % nest.outer_period != nest.phase) {
        genuine_non_nest = true;
      }
    }
    if (genuine_non_nest) {
      count_batch_reject(BatchReject::kAddrProgression, 0);
    }
  }

  // Classify how each region terminates (tail vs grant change) — the other
  // half of the static telemetry.
  for (std::size_t i = 0; i < loop_regions_.size(); ++i) {
    const LoopRegion& r = loop_regions_[i];
    // Classify what terminated the region when it ends on a vsetvli whose
    // signature diverged from its previous-period counterpart: a smaller
    // grant at the same vtype is a strip-mine tail; anything else is a
    // grant/shape change (the canonical mid-loop vsetvli failure).
    if (r.end < prog_->ops.size() && r.end >= r.start + r.period) {
      const auto* end_op = std::get_if<VInstr>(&prog_->ops[r.end]);
      const auto* prev_op = std::get_if<VInstr>(&prog_->ops[r.end - r.period]);
      if (end_op != nullptr && prev_op != nullptr &&
          end_op->op == Op::kVsetvli && prev_op->op == Op::kVsetvli &&
          !(op_keys_[r.end] == op_keys_[r.end - r.period])) {
        const OpKey& ke = op_keys_[r.end];
        const OpKey& kp = op_keys_[r.end - r.period];
        if (ke.vtype == kp.vtype && ke.value < kp.value) {
          count_batch_reject(BatchReject::kVlTail, 0);
        } else {
          count_batch_reject(BatchReject::kGrantChange, 0);
        }
      }
    }
  }
}

void TimingEngine::snapshot_state(Cycle t, std::vector<std::uint64_t>* out,
                                  std::vector<std::uint64_t>* shadow) const {
  const std::uint64_t id_base = next_id_;
  const std::size_t pc_base = pc_;

  // Warmup fast-forward (see the exactness argument above): issue/dispatch
  // stamps feed nothing but trace records, so with tracing off they are
  // diverted to `shadow` instead of the compared state; cycles read only
  // through `> t` predicates are clamped to t (any past value behaves
  // identically), with the raw value kept in `shadow` so an engage that
  // relied on the projection can be told apart from an exact one.
  const bool stamps_inert = trace_ == nullptr;
  const auto push_stamp = [&](Cycle x) {
    push_cycle_rel(stamps_inert ? shadow : out, x, t);
  };
  const auto push_past_equiv = [&](Cycle x) {
    push_cycle_rel(out, std::max(x, t), t);
    push_cycle_rel(shadow, x, t);
  };

  out->push_back(static_cast<std::uint64_t>(dispatched_this_cycle_));
  out->push_back(static_cast<std::uint64_t>(cva6_stall_));
  push_past_equiv(cva6_free_);
  out->push_back(fn_.vl());
  out->push_back(sew_bits(fn_.vtype().sew));
  out->push_back(static_cast<std::uint64_t>(fn_.vtype().lmul.log2 + 8));

  const auto push_shape = [&](const VInstr& in) {
    out->push_back(static_cast<std::uint64_t>(in.op));
    out->push_back(static_cast<std::uint64_t>(in.vd) |
                   (static_cast<std::uint64_t>(in.vs1) << 8) |
                   (static_cast<std::uint64_t>(in.vs2) << 16) |
                   (static_cast<std::uint64_t>(in.masked ? 1 : 0) << 24));
    out->push_back(static_cast<std::uint64_t>(in.xs));
    out->push_back(static_cast<std::uint64_t>(in.stride));
  };

  out->push_back(seq_.size());
  for (const Pending& p : seq_) {
    push_shape(p.in);
    out->push_back(rel_u64(p.prog_index, pc_base));
    out->push_back(p.vl);
    out->push_back(p.ew);
    out->push_back(p.group_regs);
    push_stamp(p.issued_at);
    push_past_equiv(p.arrive_at);
  }

  for (std::size_t u = 1; u < kNumUnits; ++u) {
    const auto& q = unitq_[u];
    out->push_back(q.size());
    for (const std::uint32_t slot : q) {
      const Inflight& instr = pool_.at(slot);
      push_shape(instr.in);
      out->push_back(rel_u64(instr.prog_index, pc_base));
      out->push_back(instr.vl);
      out->push_back(instr.ew);
      out->push_back(static_cast<std::uint64_t>(instr.unit));
      push_stamp(instr.issued_at);
      push_stamp(instr.dispatched_at);
      push_cycle_rel(out, instr.start_at, t);
      push_cycle_rel(out, instr.advanced_until, t);
      push_cycle_rel(out, instr.first_result_at, t);
      push_cycle_rel(out, instr.completed_at, t);
      push_cycle_rel(out, instr.finished_at, t);
      push_cycle_rel(out, instr.projected_done, t);
      out->push_back(instr.produced);
      out->push_back(instr.rate_acc);
      out->push_back(instr.bytes_total);
      out->push_back(instr.bytes_done);
      out->push_back(instr.head_skew);
      out->push_back(static_cast<std::uint64_t>(instr.red_phase));
      push_cycle_rel(out, instr.red_phase_end, t);
      out->push_back(instr.write_base);
      out->push_back(instr.write_count);
      out->push_back(instr.read_groups);
      for (unsigned g = 0; g < instr.read_groups; ++g) {
        out->push_back(instr.read_base[g]);
        out->push_back(instr.read_count[g]);
      }
      out->push_back(instr.deps.size());
      for (const Dep& d : instr.deps) {
        const bool live = pool_.get(d.slot, d.producer) != nullptr;
        out->push_back(live ? 1 : 0);
        out->push_back(live ? rel_u64(d.producer, id_base) : 0);
        out->push_back(d.lag);
        out->push_back(static_cast<std::uint64_t>(d.offset));
        out->push_back(d.full ? 1 : 0);
        out->push_back(d.producer_ticks_first ? 1 : 0);
      }
      instr.hist.serialize_rel(t, out);
    }
  }

  for (const RegState& rs : regs_) {
    const Inflight* w = find(rs.writer);
    out->push_back(w == nullptr ? 0 : 1);
    out->push_back(w == nullptr ? 0 : rel_u64(rs.writer.id, id_base));
    std::uint64_t live_readers = 0;
    for (const RegRef& rr : rs.readers) {
      if (find(rr) != nullptr) ++live_readers;
    }
    out->push_back(live_readers);
    for (const RegRef& rr : rs.readers) {
      if (find(rr) != nullptr) out->push_back(rel_u64(rr.id, id_base));
    }
  }
}

std::size_t TimingEngine::next_barrier(std::size_t b) const {
  const auto& bars = loop_barriers_[loop_region_idx_];
  const auto it = std::lower_bound(bars.begin(), bars.end(), b);
  return it == bars.end() ? loop_regions_[loop_region_idx_].end : *it;
}

std::size_t TimingEngine::replay_barrier_limit(const LoopRegion& r) const {
  // Barriers invalidate a batch from the oldest still-PENDING op's period,
  // not from the issue front: a sequencer-queued op dispatches *inside* the
  // batched window, and dispatch is where its address is consumed (head
  // skew, load/store conflict checks). The replay gives it its
  // period-earlier counterpart's dispatch pattern, so a barrier on its
  // period — an address-phase or conflict-outcome change the snapshot
  // cannot see (Pending state carries no address) — would be replayed
  // wrong. Unit-queue ops are safe: their dispatch-time address reads are
  // already consumed and their remaining evolution is snapshot state.
  std::size_t min_pending = pc_;
  for (const Pending& p : seq_) {
    min_pending = std::min(min_pending, p.prog_index);
  }
  const std::size_t from =
      min_pending <= r.start
          ? r.start
          : r.start + ((min_pending - r.start) / r.period) * r.period;
  return std::min(next_barrier(from), r.end);
}

std::uint64_t TimingEngine::batchable_periods(const LoopRegion& r) const {
  const std::size_t b2 = pc_;
  const std::size_t limit = replay_barrier_limit(r);
  if (limit <= b2) return 0;
  const std::uint64_t k = (limit - b2) / r.period;
  if (k == 0) return 0;
  // Every live op must be at least one period deep into the region: its
  // previous-period counterpart anchors the rigid-shift argument for the
  // dispatch-time address comparisons it participates in.
  std::size_t min_idx = b2;
  for (const Pending& p : seq_) min_idx = std::min(min_idx, p.prog_index);
  for (const auto& q : unitq_) {
    for (const std::uint32_t slot : q) {
      min_idx = std::min(min_idx, pool_.at(slot).prog_index);
    }
  }
  if (min_idx < r.start + r.period) return 0;
  return k;
}

bool TimingEngine::loop_checkpoint(Cycle* t_io) {
  while (loop_region_idx_ < loop_regions_.size() &&
         pc_ >= loop_regions_[loop_region_idx_].end) {
    ++loop_region_idx_;
    ckpt_.valid = false;
  }
  if (loop_region_idx_ >= loop_regions_.size()) return false;
  const LoopRegion& r = loop_regions_[loop_region_idx_];
  // Past the last boundary from which a whole barrier-free period still
  // lies ahead, no engage can ever happen (pc only grows) — skip the
  // snapshot work entirely. Dense-barrier regions (an aperiodic address
  // walk, an unpadded stencil whose bus phase drifts every period) would
  // otherwise serialize the machine at every boundary for nothing.
  if (pc_ > loop_last_engageable_[loop_region_idx_]) return false;
  if (pc_ < r.start + r.period) return false;
  if ((pc_ - r.start) % r.period != 0) return false;
  if (pc_ == last_ckpt_pc_) return false;  // stalled at the boundary
  last_ckpt_pc_ = pc_;

  snap_scratch_.clear();
  shadow_scratch_.clear();
  snapshot_state(*t_io, &snap_scratch_, &shadow_scratch_);

  if (ckpt_.valid && ckpt_.pc + r.period == pc_) {
    if (snap_scratch_ == ckpt_.state) {
      const Cycle d = *t_io - ckpt_.t;
      const std::uint64_t id_delta = next_id_ - ckpt_.next_id;
      const std::uint64_t k = batchable_periods(r);
      if (k > 0) {
        // Clamped when a barrier (not the region end) bounded K: the batch
        // stops at a nested-loop row boundary and re-arms beyond it.
        // Projected when the snapshots matched only up to inert warmup
        // residue (the canonical short-run wide-machine engage).
        const std::uint64_t full_ahead = (r.end - pc_) / r.period;
        const bool clamped = k < full_ahead;
        const bool projected = shadow_scratch_ != ckpt_.shadow;
        apply_batch(r, k, d, id_delta, t_io);
        if (clamped) ++stats_.batch_clamps;
        if (projected) ++stats_.warmup_projected;
        if (trace_ != nullptr) {
          trace_->mark(*t_io, clamped     ? SimMarkerKind::kBatchClamp
                              : projected ? SimMarkerKind::kBatchWarmup
                                          : SimMarkerKind::kBatchEngage,
                       k);
        }
        // The landing pc is itself a boundary; the state there is known to
        // equal this snapshot (shifted), so re-arm recording from scratch
        // for whatever partial tail remains.
        ckpt_.valid = false;
        last_ckpt_pc_ = pc_;
        return true;
      }
      if (replay_barrier_limit(r) >= pc_ + r.period && r.end >= pc_ + r.period) {
        // Snapshots matched and the next period is barrier-free, yet no
        // whole iteration can retire: exactly the in-flight liveness gate
        // (an op still less than one period into the region) — the
        // canonical wide-machine failure, where long in-flight windows
        // span the loop start forever.
        count_batch_reject(BatchReject::kLivenessGate, *t_io);
      }
      // Otherwise a barrier sits inside the very next period (early
      // conservative partner reach, or a row boundary): nothing to count —
      // recording simply continues and a later boundary engages.
    } else {
      // Consecutive boundary snapshots differ: not in steady state (yet) —
      // expected a few times during warmup, pathological if it never stops.
      count_batch_reject(BatchReject::kSnapshotMismatch, *t_io);
    }
  }

  ckpt_.valid = true;
  ckpt_.t = *t_io;
  ckpt_.pc = pc_;
  ckpt_.next_id = next_id_;
  ckpt_.stats = stats_;
  ckpt_.trace_len = trace_ == nullptr ? 0 : trace_->size();
  ckpt_.state.swap(snap_scratch_);
  ckpt_.shadow.swap(shadow_scratch_);
  return false;
}

void TimingEngine::apply_batch(const LoopRegion& r, std::uint64_t k, Cycle d,
                               std::uint64_t id_delta, Cycle* t_io) {
  const Cycle shift = k * d;
  const std::size_t dp = k * r.period;
  const std::uint64_t di = k * id_delta;
  const std::size_t b2 = pc_;
  const Cycle t2 = *t_io;
  const std::uint64_t id2 = next_id_;

  // 1. Trace replay: rebase the records retired inside the recorded window
  // and stamp one copy per batched window, refetching the disassembly from
  // the real program op so addresses and scalars stay exact.
  if (trace_ != nullptr) {
    trace_deltas_.clear();
    const auto& recs = trace_->records();
    for (std::size_t i = ckpt_.trace_len; i < recs.size(); ++i) {
      const TraceRecord& rec = recs[i];
      TraceDelta td;
      td.id = static_cast<std::int64_t>(rec.id) -
              static_cast<std::int64_t>(ckpt_.next_id);
      td.prog = static_cast<std::int64_t>(rec.prog_index) -
                static_cast<std::int64_t>(ckpt_.pc);
      td.vl = rec.vl;
      td.unit = rec.unit;
      td.issued = static_cast<std::int64_t>(rec.issued) -
                  static_cast<std::int64_t>(ckpt_.t);
      td.dispatched = static_cast<std::int64_t>(rec.dispatched) -
                      static_cast<std::int64_t>(ckpt_.t);
      td.has_first_result = rec.first_result != 0;
      td.first_result = td.has_first_result
                            ? static_cast<std::int64_t>(rec.first_result) -
                                  static_cast<std::int64_t>(ckpt_.t)
                            : 0;
      td.completed = static_cast<std::int64_t>(rec.completed) -
                     static_cast<std::int64_t>(ckpt_.t);
      td.stall_reason = rec.stall_reason;
      td.stall_slots = rec.stall_slots;
      trace_deltas_.push_back(td);
    }
    for (std::uint64_t m = 0; m < k; ++m) {
      const Cycle bt = t2 + m * d;
      const std::uint64_t bid = id2 + m * id_delta;
      const std::size_t bpc = b2 + m * r.period;
      for (const TraceDelta& td : trace_deltas_) {
        TraceRecord rec;
        rec.id = static_cast<std::uint64_t>(static_cast<std::int64_t>(bid) + td.id);
        rec.prog_index =
            static_cast<std::uint64_t>(static_cast<std::int64_t>(bpc) + td.prog);
        rec.text = disasm(std::get<VInstr>(prog_->ops[rec.prog_index]));
        rec.unit = td.unit;
        rec.vl = td.vl;
        rec.issued = static_cast<Cycle>(static_cast<std::int64_t>(bt) + td.issued);
        rec.dispatched =
            static_cast<Cycle>(static_cast<std::int64_t>(bt) + td.dispatched);
        rec.first_result =
            td.has_first_result
                ? static_cast<Cycle>(static_cast<std::int64_t>(bt) + td.first_result)
                : 0;
        rec.completed =
            static_cast<Cycle>(static_cast<std::int64_t>(bt) + td.completed);
        rec.stall_reason = td.stall_reason;
        rec.stall_slots = td.stall_slots;
        trace_->add(std::move(rec));
      }
    }
  }

  // 2. Architectural execution of every batched op, in program order (the
  // timing pattern is replayed; the data is not — vsetvli grants included,
  // which the signature proves identical period over period).
  for (std::size_t i = b2; i < b2 + dp; ++i) {
    if (const auto* v = std::get_if<VInstr>(&prog_->ops[i])) fn_.exec(*v);
  }

  // 3. Relabel the live window K periods into the future. Pass 1 retargets
  // every by-id reference while the pool still resolves the old ids; pass 2
  // shifts the instructions themselves.
  for (auto& q : unitq_) {
    for (const std::uint32_t slot : q) {
      Inflight& instr = pool_.at(slot);
      for (Dep& dep : instr.deps) {
        if (pool_.get(dep.slot, dep.producer) != nullptr) dep.producer += di;
      }
    }
  }
  for (RegState& rs : regs_) {
    if (find(rs.writer) != nullptr) rs.writer.id += di;
    for (RegRef& rr : rs.readers) {
      if (find(rr) != nullptr) rr.id += di;
    }
  }
  const auto shift_cycle = [&](Cycle& c) {
    if (c != kNeverCycle) c += shift;
  };
  for (auto& q : unitq_) {
    for (const std::uint32_t slot : q) {
      Inflight& instr = pool_.at(slot);
      instr.id += di;
      instr.prog_index += dp;
      instr.in = std::get<VInstr>(prog_->ops[instr.prog_index]);
      instr.issued_at += shift;
      instr.dispatched_at += shift;
      instr.start_at += shift;
      instr.advanced_until += shift;
      shift_cycle(instr.first_result_at);
      shift_cycle(instr.completed_at);
      shift_cycle(instr.finished_at);
      shift_cycle(instr.projected_done);
      shift_cycle(instr.red_phase_end);
      instr.hist.shift_time(shift);
      instr.tape.shift_time(shift);
    }
  }
  for (Pending& p : seq_) {
    p.prog_index += dp;
    p.in = std::get<VInstr>(prog_->ops[p.prog_index]);
    p.issued_at += shift;
    p.arrive_at += shift;
  }
  cva6_free_ += shift;
  pc_ = b2 + dp;
  next_id_ = id2 + di;

  // 4. K copies of the recorded per-window stat deltas.
  const RunStats& s0 = ckpt_.stats;
  stats_.vinstrs += k * (stats_.vinstrs - s0.vinstrs);
  stats_.scalar_ops += k * (stats_.scalar_ops - s0.scalar_ops);
  stats_.flops += k * (stats_.flops - s0.flops);
  stats_.fpu_result_elems += k * (stats_.fpu_result_elems - s0.fpu_result_elems);
  stats_.mem_read_bytes += k * (stats_.mem_read_bytes - s0.mem_read_bytes);
  stats_.mem_write_bytes += k * (stats_.mem_write_bytes - s0.mem_write_bytes);
  stats_.issue_stall_cycles +=
      k * (stats_.issue_stall_cycles - s0.issue_stall_cycles);
  stats_.scalar_wait_cycles +=
      k * (stats_.scalar_wait_cycles - s0.scalar_wait_cycles);
  for (std::size_t u = 0; u < kNumUnits; ++u) {
    stats_.unit_busy_elems[u] += k * (stats_.unit_busy_elems[u] - s0.unit_busy_elems[u]);
  }
  // Stall attribution rides along: it is computed in-band with the machine's
  // evolution, so the recorded window's per-reason deltas repeat exactly —
  // "batched iterations multiply deltas by exactly K" is the contract the
  // equivalence fuzzers pin down.
  for (std::size_t r2 = 0; r2 < kNumStallReasons; ++r2) {
    stats_.stall_cycles[r2] += k * (stats_.stall_cycles[r2] - s0.stall_cycles[r2]);
  }
  stats_.fpu_busy_slots += k * (stats_.fpu_busy_slots - s0.fpu_busy_slots);
  stats_.batched_iterations += k;

  // 5. One batch = K iterations of progress, not one note (the watchdog's
  // wakeup budget must not see a long fast-forward as a silent machine).
  watchdog_.note_progress(k);

  *t_io = t2 + shift;
}

}  // namespace araxl
