// Functional (architectural) execution of the RVV subset.
//
// The machine model separates *what* an instruction computes from *when*
// its results appear: this engine updates the physical VRF, memory, and the
// scalar accumulator with exact IEEE-754 semantics in program order, while
// machine/timing.cpp models when each element becomes visible. The split is
// sound because the timing model enforces the same program-order dataflow
// the functional engine assumes (hazards + chaining).
#ifndef ARAXL_MACHINE_FUNCTIONAL_HPP
#define ARAXL_MACHINE_FUNCTIONAL_HPP

#include <cstdint>
#include <vector>

#include "isa/program.hpp"
#include "machine/config.hpp"
#include "mem/main_memory.hpp"
#include "vrf/vrf.hpp"

namespace araxl {

class FunctionalEngine {
 public:
  FunctionalEngine(const MachineConfig& cfg, Vrf& vrf, MainMemory& mem);

  /// Executes one vector instruction (including vsetvli) architecturally.
  void exec(const VInstr& in);

  [[nodiscard]] std::uint64_t vl() const noexcept { return vl_; }
  [[nodiscard]] Vtype vtype() const noexcept { return vtype_; }
  /// Value captured by the last vfmv.f.s (the scalar FP accumulator).
  [[nodiscard]] double scalar_acc() const noexcept { return scalar_acc_; }
  /// Value captured by the last vcpop.m / vfirst.m (integer accumulator).
  [[nodiscard]] std::int64_t scalar_iacc() const noexcept { return scalar_iacc_; }

 private:
  // Element accessors honouring the current SEW.
  [[nodiscard]] double read_f(unsigned reg, std::uint64_t i) const;
  void write_f(unsigned reg, std::uint64_t i, double v);
  [[nodiscard]] std::uint64_t read_x(unsigned reg, std::uint64_t i) const;
  void write_x(unsigned reg, std::uint64_t i, std::uint64_t v);
  [[nodiscard]] bool active(const VInstr& in, std::uint64_t i) const;
  [[nodiscard]] unsigned ew_bytes() const { return sew_bytes(vtype_.sew); }
  [[nodiscard]] double scalar_of(const VInstr& in) const {
    return in.fs_from_acc ? scalar_acc_ : in.fs;
  }

  void exec_memory(const VInstr& in);
  /// Bulk unmasked constant-stride path (vlse/vsse): one bounds check for
  /// the whole transfer, a tight fixed-width gather/scatter loop through
  /// scratch, and a single VRF stream. Returns false when the shape needs
  /// the per-element fallback.
  bool exec_memory_bulk_strided(const VInstr& in);
  /// Bulk *masked* unit-stride path (vle/vse with a mask): one bounds
  /// check for the whole range, the vd stream read once (load merge keeps
  /// inactive elements), then fixed-width copies for the active elements
  /// only. Returns false when any byte of the range is out of bounds —
  /// the per-element fallback then reports the exact faulting element.
  bool exec_memory_bulk_masked_unit(const VInstr& in);
  void exec_fp(const VInstr& in);
  /// Bulk unmasked FP path at SEW 16/32/64: operands streamed into
  /// contiguous scratch (narrow elements widened to double — bit-exact
  /// with the per-element path, which also computes in double and rounds
  /// once on writeback), one tight loop per opcode, result narrowed and
  /// streamed back. Returns false when the op/shape needs the per-element
  /// fallback.
  bool exec_fp_bulk(const VInstr& in);
  void exec_int(const VInstr& in);
  /// Bulk unmasked integer/move path at any SEW: operands streamed into
  /// fixed-width scratch, one tight native-width loop per opcode (wrapping
  /// arithmetic replaces the per-element mask dance), result streamed back.
  /// Returns false when the op/shape needs the per-element fallback.
  bool exec_int_bulk(const VInstr& in);
  template <typename T>
  void exec_int_bulk_t(const VInstr& in);
  void exec_reduction(const VInstr& in);
  void exec_slide(const VInstr& in);
  /// Bulk unmasked SEW=64 slide1up/slide1down: one source stream, a shifted
  /// memmove in scratch, one destination stream (the jacobi2d hot path).
  bool exec_slide_bulk64(const VInstr& in);
  void exec_mask(const VInstr& in);
  /// Flattened mask paths: dedicated per-opcode loops (no per-element
  /// opcode switch), with SEW=64 compare operands gathered through the
  /// bulk streams. Returns false for shapes the fallback must handle.
  bool exec_mask_bulk(const VInstr& in);
  void exec_widening(const VInstr& in);
  void exec_gather(const VInstr& in);
  void exec_mask_population(const VInstr& in);

  const MachineConfig& cfg_;
  Vrf& vrf_;
  MainMemory& mem_;
  Vtype vtype_{};
  std::uint64_t vl_ = 0;
  double scalar_acc_ = 0.0;
  std::int64_t scalar_iacc_ = 0;

  // Scratch for the bulk FP path (capacity persists across instructions).
  std::vector<double> buf_s2_;
  std::vector<double> buf_s1_;
  std::vector<double> buf_d_;
  // Scratch for the bulk strided memory path.
  std::vector<std::uint8_t> buf_mem_;
  // Scratch for the bulk integer path (raw element bytes at the active SEW).
  std::vector<std::uint8_t> buf_i2_;
  std::vector<std::uint8_t> buf_i1_;
  std::vector<std::uint8_t> buf_id_;
};

}  // namespace araxl

#endif  // ARAXL_MACHINE_FUNCTIONAL_HPP
