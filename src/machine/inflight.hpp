// In-flight vector instruction state tracked by the timing engine.
#ifndef ARAXL_MACHINE_INFLIGHT_HPP
#define ARAXL_MACHINE_INFLIGHT_HPP

#include <cstdint>
#include <vector>

#include "isa/instr.hpp"
#include "sim/cycle.hpp"
#include "sim/pipe.hpp"

namespace araxl {

/// Chaining dependency on an older in-flight instruction.
///
/// Element i of the consumer needs element (i + offset) of the producer to
/// have been produced at least `lag` cycles ago (the producer unit's result
/// latency). `full` marks scalar-style dependencies (e.g. the vs1 seed of a
/// reduction) that require the producer to have finished entirely.
struct Dep {
  std::uint64_t producer = 0;
  std::int64_t offset = 0;
  unsigned lag = 0;
  bool full = false;
};

/// Progress phases of a reduction (paper §III-B.4): accumulate in the
/// lanes, combine across lanes, combine across clusters over the ring in a
/// log-tree, reduce the SIMD word, write back the scalar.
enum class RedPhase : std::uint8_t {
  kIntraLane,
  kInterLane,
  kInterCluster,
  kSimd,
  kWriteback,
  kDone,
};

struct Inflight {
  std::uint64_t id = 0;
  VInstr in{};
  const OpSpec* spec = nullptr;
  std::uint64_t vl = 0;       ///< element count captured at issue
  unsigned ew = 8;            ///< element bytes captured at issue
  Unit unit = Unit::kNone;

  Cycle issued_at = 0;         ///< accepted by CVA6 (trace)
  Cycle dispatched_at = 0;
  Cycle start_at = 0;          ///< earliest cycle the first result can appear
  Cycle first_result_at = kNeverCycle;  ///< first element produced (trace)
  Cycle completed_at = kNeverCycle;

  std::uint64_t produced = 0;  ///< element results produced so far
  LaggedCounter hist;          ///< produced-count history for consumers
  std::uint64_t rate_acc = 0;  ///< fractional-throughput accumulator (x256)

  // Memory transfer state (loads/stores).
  std::uint64_t bytes_total = 0;
  std::uint64_t bytes_done = 0;
  std::uint64_t head_skew = 0;  ///< useless bytes in the first beat (misalignment)

  // Reduction phase machine.
  RedPhase red_phase = RedPhase::kIntraLane;
  Cycle red_phase_end = kNeverCycle;

  std::vector<Dep> deps;

  // Register claims (released at retirement).
  unsigned write_base = 0;
  unsigned write_count = 0;  ///< 0 when the op writes no register
  unsigned read_base[3] = {0, 0, 0};
  unsigned read_count[3] = {0, 0, 0};
  unsigned read_groups = 0;

  [[nodiscard]] bool finished_producing() const noexcept { return produced >= vl; }
};

}  // namespace araxl

#endif  // ARAXL_MACHINE_INFLIGHT_HPP
