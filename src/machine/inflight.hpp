// In-flight vector instruction state tracked by the timing engine, plus
// the slab pool that owns it.
#ifndef ARAXL_MACHINE_INFLIGHT_HPP
#define ARAXL_MACHINE_INFLIGHT_HPP

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/contracts.hpp"
#include "isa/instr.hpp"
#include "sim/cycle.hpp"
#include "sim/pipe.hpp"
#include "sim/stats.hpp"

namespace araxl {

/// Chaining dependency on an older in-flight instruction.
///
/// Element i of the consumer needs element (i + offset) of the producer to
/// have been produced at least `lag` cycles ago (the producer unit's result
/// latency). `full` marks scalar-style dependencies (e.g. the vs1 seed of a
/// reduction) that require the producer to have finished entirely.
struct Dep {
  std::uint64_t producer = 0;   ///< producer instruction id
  std::uint32_t slot = 0;       ///< producer slot in the InflightPool
  std::int64_t offset = 0;
  unsigned lag = 0;
  bool full = false;
  /// Producer's unit ticks before the consumer's within a cycle; decides
  /// whether a same-cycle finish is already visible to `full` consumers.
  bool producer_ticks_first = false;
};

/// Progress phases of a reduction (paper §III-B.4): accumulate in the
/// lanes, combine across lanes, combine across clusters over the ring in a
/// log-tree, reduce the SIMD word, write back the scalar.
enum class RedPhase : std::uint8_t {
  kIntraLane,
  kInterLane,
  kInterCluster,
  kSimd,
  kWriteback,
  kDone,
};

struct Inflight {
  std::uint64_t id = 0;
  std::size_t prog_index = 0;  ///< index of `in` in Program::ops
  VInstr in{};
  const OpSpec* spec = nullptr;
  std::uint64_t vl = 0;       ///< element count captured at issue
  unsigned ew = 8;            ///< element bytes captured at issue
  Unit unit = Unit::kNone;

  Cycle issued_at = 0;         ///< accepted by CVA6 (trace)
  Cycle dispatched_at = 0;
  Cycle start_at = 0;          ///< earliest cycle the first result can appear
  Cycle first_result_at = kNeverCycle;  ///< first element produced (trace)
  Cycle completed_at = kNeverCycle;
  Cycle finished_at = kNeverCycle;  ///< cycle `produced` reached vl
  Cycle advanced_until = 0;    ///< cycles <= this are already simulated
  Cycle projected_done = kNeverCycle;  ///< reduction end-of-phases forecast

  std::uint64_t produced = 0;  ///< element results produced so far
  LaggedCounter hist;          ///< produced-count history for consumers
  std::uint64_t rate_acc = 0;  ///< fractional-throughput accumulator (x256)

  // Stall attribution (FPU-unit instructions only). `tape` mirrors every
  // `hist` record without the ring's eviction so the attributor can evaluate
  // per-cycle production inside arbitrarily long wakeup windows; `stall_acc`
  // accumulates the byte-slots charged while this instruction was the acting
  // head (or the blamed queue front), feeding the trace-span annotation.
  ProdTape tape;
  std::array<std::uint64_t, kNumStallReasons> stall_acc{};

  // Memory transfer state (loads/stores).
  std::uint64_t bytes_total = 0;
  std::uint64_t bytes_done = 0;
  std::uint64_t head_skew = 0;  ///< useless bytes in the first beat (misalignment)

  // Reduction phase machine.
  RedPhase red_phase = RedPhase::kIntraLane;
  Cycle red_phase_end = kNeverCycle;

  std::vector<Dep> deps;

  // Register claims (released at retirement). Up to four source groups:
  // vs1, vs2, vd-as-source, and the v0 mask.
  unsigned write_base = 0;
  unsigned write_count = 0;  ///< 0 when the op writes no register
  unsigned read_base[4] = {0, 0, 0, 0};
  unsigned read_count[4] = {0, 0, 0, 0};
  unsigned read_groups = 0;

  [[nodiscard]] bool finished_producing() const noexcept { return produced >= vl; }

  /// Returns the slot to dispatch-time defaults, keeping the deps capacity
  /// and hist storage so recycled slots allocate nothing.
  void reset() noexcept {
    id = 0;
    prog_index = 0;
    in = VInstr{};
    spec = nullptr;
    vl = 0;
    ew = 8;
    unit = Unit::kNone;
    issued_at = dispatched_at = start_at = 0;
    first_result_at = completed_at = finished_at = kNeverCycle;
    advanced_until = 0;
    projected_done = kNeverCycle;
    produced = 0;
    hist.clear();
    rate_acc = 0;
    tape.clear();
    stall_acc.fill(0);
    bytes_total = bytes_done = head_skew = 0;
    red_phase = RedPhase::kIntraLane;
    red_phase_end = kNeverCycle;
    deps.clear();
    write_base = write_count = 0;
    for (unsigned g = 0; g < 4; ++g) read_base[g] = read_count[g] = 0;
    read_groups = 0;
  }
};

/// Slab allocator for Inflight records, keyed by dense slot ids.
///
/// The dispatch path used to heap-allocate one Inflight (plus an
/// unordered_map node) per vector instruction; for event-driven sweeps that
/// allocator traffic dominates.  The pool recycles slots through a free
/// list, so steady-state dispatch touches no allocator at all, and `get`
/// resolves a (slot, id) reference in O(1) — a stale id (the producer
/// retired and the slot was recycled) resolves to nullptr, which is exactly
/// the "retired producers are fully available" contract `find` had.
class InflightPool {
 public:
  Inflight& alloc(std::uint64_t id, std::uint32_t* slot_out) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Inflight& instr = slots_[slot];
    instr.reset();
    instr.id = id;
    ++active_;
    *slot_out = slot;
    return instr;
  }

  void release(std::uint32_t slot) {
    debug_check(slot < slots_.size() && slots_[slot].id != 0,
                "releasing an empty inflight slot");
    slots_[slot].id = 0;
    free_.push_back(slot);
    --active_;
  }

  /// Slot contents when it still holds instruction `id`, else nullptr.
  [[nodiscard]] Inflight* get(std::uint32_t slot, std::uint64_t id) noexcept {
    Inflight& instr = slots_[slot];
    return instr.id == id ? &instr : nullptr;
  }
  [[nodiscard]] const Inflight* get(std::uint32_t slot,
                                    std::uint64_t id) const noexcept {
    const Inflight& instr = slots_[slot];
    return instr.id == id ? &instr : nullptr;
  }

  /// Occupied slot (unchecked id); precondition: slot is live.
  [[nodiscard]] Inflight& at(std::uint32_t slot) noexcept { return slots_[slot]; }
  [[nodiscard]] const Inflight& at(std::uint32_t slot) const noexcept {
    return slots_[slot];
  }

  [[nodiscard]] std::size_t active() const noexcept { return active_; }

  void clear() {
    // Keep the slabs; just mark every slot free.
    free_.clear();
    for (std::size_t s = slots_.size(); s-- > 0;) {
      slots_[s].id = 0;
      free_.push_back(static_cast<std::uint32_t>(s));
    }
    active_ = 0;
  }

 private:
  std::deque<Inflight> slots_;  ///< deque: stable addresses across growth
  std::vector<std::uint32_t> free_;
  std::size_t active_ = 0;
};

}  // namespace araxl

#endif  // ARAXL_MACHINE_INFLIGHT_HPP
