// Machine — the library's primary facade.
//
// Owns the architectural state (memory, VRF) and runs Programs through the
// functional + timing engines. Typical use:
//
//   auto cfg = MachineConfig::araxl(64);       // 16 clusters x 4 lanes
//   Machine m(cfg);
//   m.mem().store_doubles(0x1000, data);
//   ProgramBuilder pb(cfg.effective_vlen(), "axpy");
//   ... emit instructions ...
//   RunStats stats = m.run(pb.take());
//   std::cout << stats.fpu_util() << "\n";
#ifndef ARAXL_MACHINE_MACHINE_HPP
#define ARAXL_MACHINE_MACHINE_HPP

#include "machine/config.hpp"
#include "machine/functional.hpp"
#include "machine/timing.hpp"
#include "mem/main_memory.hpp"
#include "sim/stats.hpp"
#include "vrf/vrf.hpp"

namespace araxl {

class Machine {
 public:
  explicit Machine(MachineConfig cfg);

  // The functional engine holds references into this object's memory and
  // VRF, so a Machine must never be copied or moved (placing one in a
  // reallocating container would dangle those references). Guaranteed copy
  // elision still allows returning a fresh Machine by value.
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  Machine(Machine&&) = delete;
  Machine& operator=(Machine&&) = delete;

  [[nodiscard]] const MachineConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] MainMemory& mem() noexcept { return mem_; }
  [[nodiscard]] const MainMemory& mem() const noexcept { return mem_; }
  [[nodiscard]] Vrf& vrf() noexcept { return vrf_; }
  [[nodiscard]] const Vrf& vrf() const noexcept { return vrf_; }

  /// Scalar FP accumulator (result of the last vfmv.f.s).
  [[nodiscard]] double scalar_acc() const noexcept { return fn_.scalar_acc(); }
  /// Scalar integer accumulator (result of the last vcpop.m / vfirst.m).
  [[nodiscard]] std::int64_t scalar_iacc() const noexcept {
    return fn_.scalar_iacc();
  }

  /// Simulates `prog` to completion. Architectural state (memory, VRF)
  /// persists across runs; timing state does not. An optional trace sink
  /// receives one record per retired vector instruction (see trace/). An
  /// optional RunControl is polled cooperatively at scheduler wakeups —
  /// a fired shutdown token or deadline raises SimCancelled (the driver's
  /// job-timeout and graceful-shutdown paths). An optional metrics
  /// registry (obs/metrics.hpp) receives per-unit busy/stall/idle cycles,
  /// occupancy samples, and batching telemetry; simulated results are
  /// identical with or without one (metrics are pure observers).
  RunStats run(const Program& prog, InstrTrace* trace = nullptr,
               const RunControl* control = nullptr,
               obs::MetricsRegistry* metrics = nullptr);

 private:
  MachineConfig cfg_;
  MainMemory mem_;
  Vrf vrf_;
  FunctionalEngine fn_;
  EngineInstruments instruments_;
};

}  // namespace araxl

#endif  // ARAXL_MACHINE_MACHINE_HPP
