#include "machine/machine.hpp"

namespace araxl {

Machine::Machine(MachineConfig cfg)
    : cfg_(std::move(cfg)),
      mem_((cfg_.validate(), cfg_.mem_size_bytes)),
      vrf_(cfg_.topo, cfg_.effective_vlen(), cfg_.mask_layout()),
      fn_(cfg_, vrf_, mem_) {}

RunStats Machine::run(const Program& prog, InstrTrace* trace,
                      const RunControl* control,
                      obs::MetricsRegistry* metrics) {
  TimingEngine engine(cfg_, fn_, trace, metrics);
  return engine.run(prog, control);
}

}  // namespace araxl
