#include "machine/machine.hpp"

namespace araxl {

Machine::Machine(MachineConfig cfg)
    : cfg_(std::move(cfg)),
      mem_((cfg_.validate(), cfg_.mem_size_bytes)),
      vrf_(cfg_.topo, cfg_.effective_vlen(), cfg_.mask_layout()),
      fn_(cfg_, vrf_, mem_) {}

RunStats Machine::run(const Program& prog, InstrTrace* trace,
                      const RunControl* control,
                      obs::MetricsRegistry* metrics) {
  // Instrument binding is cached across runs: re-binding the same registry
  // is a pointer compare, so the per-run cost of carrying metrics is the
  // counters themselves, not ~40 name lookups.
  instruments_.bind(metrics);
  TimingEngine engine(cfg_, fn_, trace,
                      metrics == nullptr ? nullptr : &instruments_);
  return engine.run(prog, control);
}

}  // namespace araxl
