// Cycle-stepped timing engine.
//
// Composes the component models (REQI, GLSU, RINGI, lane group, sequencer
// rules, CVA6) into the machine-level schedule: the issue path (CVA6 ->
// REQI -> sequencer -> unit queues), per-unit in-order execution with
// element-granular operand chaining across units, the GLSU memory pipeline
// with bandwidth and misalignment, slide traffic over the RINGI, and the
// multi-phase reduction schedule. Functional execution happens in program
// order at issue time (see machine/functional.hpp for why the split is
// sound).
#ifndef ARAXL_MACHINE_TIMING_HPP
#define ARAXL_MACHINE_TIMING_HPP

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "interconnect/glsu.hpp"
#include "interconnect/reqi.hpp"
#include "interconnect/ring.hpp"
#include "lane/lane_group.hpp"
#include "machine/config.hpp"
#include "machine/functional.hpp"
#include "machine/inflight.hpp"
#include "scalar/cva6.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace araxl {

class TimingEngine {
 public:
  TimingEngine(const MachineConfig& cfg, FunctionalEngine& fn,
               InstrTrace* trace = nullptr);

  /// Simulates `prog` to completion and returns the run statistics.
  RunStats run(const Program& prog);

 private:
  struct RegState {
    std::uint64_t writer = 0;           ///< active in-flight writer (0 = none)
    std::vector<std::uint64_t> readers; ///< active in-flight readers
  };

  /// Instruction accepted by CVA6, travelling to / waiting in the sequencer.
  /// vl/ew/group_regs are captured at issue: a later vsetvli in the sequencer
  /// pipeline must not retroactively change an older instruction's shape.
  struct Pending {
    VInstr in{};
    std::uint64_t vl = 0;
    unsigned ew = 8;
    unsigned group_regs = 1;
    Cycle issued_at = 0;
    Cycle arrive_at = 0;
  };

  // -- per-cycle phases -------------------------------------------------------
  void tick_units(Cycle t);
  void tick_unit(Cycle t, Unit u);
  void advance_head(Cycle t, Inflight& instr);
  void advance_arith(Cycle t, Inflight& instr);
  void advance_load(Cycle t, Inflight& instr);
  void advance_store(Cycle t, Inflight& instr);
  void advance_red_phases(Cycle t, Inflight& instr);
  void retire(Cycle t);
  void tick_dispatch(Cycle t);
  void tick_cva6(Cycle t);

  // -- helpers ----------------------------------------------------------------
  [[nodiscard]] bool drained() const;
  [[nodiscard]] const Inflight* find(std::uint64_t id) const;
  [[nodiscard]] std::uint64_t avail_elems(Cycle t, const Inflight& instr) const;
  [[nodiscard]] bool reg_pending_write(unsigned reg) const;
  [[nodiscard]] bool mem_conflict(const Pending& p) const;
  void account(Unit u, const Inflight& instr, std::uint64_t adv);
  void finish_producing(Cycle t, Inflight& instr);
  void release_claims(const Inflight& instr);
  void progress_watchdog(Cycle t);

  const MachineConfig& cfg_;
  FunctionalEngine& fn_;
  InstrTrace* trace_ = nullptr;
  ReqiModel reqi_;
  GlsuModel glsu_;
  RingModel ring_;
  LaneGroupModel lanes_;
  Cva6Model cva6_;
  RunStats stats_{};

  const Program* prog_ = nullptr;
  std::size_t pc_ = 0;
  Cycle cva6_free_ = 0;

  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Inflight>> active_;
  std::array<std::deque<std::uint64_t>, kNumUnits> unitq_;
  std::deque<Pending> seq_;
  std::array<RegState, kNumVregs> regs_;

  // watchdog
  std::uint64_t last_progress_sig_ = ~std::uint64_t{0};
  Cycle last_progress_cycle_ = 0;
};

}  // namespace araxl

#endif  // ARAXL_MACHINE_TIMING_HPP
