// Machine-level timing engine, in two interchangeable flavours.
//
// Composes the component models (REQI, GLSU, RINGI, lane group, sequencer
// rules, CVA6) into the machine-level schedule: the issue path (CVA6 ->
// REQI -> sequencer -> unit queues), per-unit in-order execution with
// element-granular operand chaining across units, the GLSU memory pipeline
// with bandwidth and misalignment, slide traffic over the RINGI, and the
// multi-phase reduction schedule. Functional execution happens in program
// order at issue time (see machine/functional.hpp for why the split is
// sound).
//
// Two simulation kernels share the identical per-cycle semantics
// (MachineConfig::timing_mode selects one):
//
//  * cycle-stepped — the reference oracle: ticks t one cycle at a time and
//    walks every unit queue each cycle.
//  * event-driven  — the production engine: processes one wakeup cycle
//    exactly, then uses an EventHorizon (sim/scheduler.hpp) to jump t to
//    the next cycle where state can change, fast-forwarding unit heads
//    across the gap with closed-form multi-cycle advancement (piecewise-
//    linear segments in each LaggedCounter). Its RunStats are bit-for-bit
//    identical to the oracle's; tests/test_properties.cpp fuzzes that.
#ifndef ARAXL_MACHINE_TIMING_HPP
#define ARAXL_MACHINE_TIMING_HPP

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "interconnect/glsu.hpp"
#include "interconnect/reqi.hpp"
#include "interconnect/ring.hpp"
#include "interconnect/spec.hpp"
#include "lane/lane_group.hpp"
#include "machine/config.hpp"
#include "machine/functional.hpp"
#include "machine/inflight.hpp"
#include "obs/metrics.hpp"
#include "scalar/cva6.hpp"
#include "sim/cancel.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace araxl {

/// Conservative address range [lo, hi) touched by a vector memory op with
/// `vl` elements of `ew` bytes. Returns false for indexed accesses (their
/// footprint depends on runtime index values). A vl of 0 yields an empty
/// range — zero-element ops touch no memory and must not stall dispatch.
bool mem_range(const VInstr& in, std::uint64_t vl, unsigned ew, std::uint64_t* lo,
               std::uint64_t* hi);

/// Resolved metric-instrument handles for one registry. Binding performs
/// the name lookups (string building plus a mutex-guarded registry map
/// walk per instrument); re-binding against the same registry is a single
/// pointer compare. The Machine caches one of these across runs — a
/// TimingEngine is constructed per run, and paying ~40 lookups per run
/// dominated the metrics overhead budget once runs got fast.
struct EngineInstruments {
  /// Points the handles at `reg`'s instruments (no-op when already bound
  /// to `reg`; clears only the registry tag when `reg` is null).
  void bind(obs::MetricsRegistry* reg);

  obs::MetricsRegistry* registry = nullptr;
  std::array<obs::Counter*, kNumUnits> unit_busy{};
  std::array<obs::Counter*, kNumUnits> unit_stall{};
  std::array<obs::Counter*, kNumUnits> unit_idle{};
  std::array<obs::Counter*, kNumBatchRejects> batch_reject{};
  std::array<obs::Counter*, kNumStallReasons> stall{};
  obs::Histogram* occupancy = nullptr;
  obs::Counter* runs = nullptr;
  obs::Counter* cycles = nullptr;
  obs::Counter* wakeups = nullptr;
  obs::Counter* batched_iterations = nullptr;
  obs::Counter* warmup_projected = nullptr;
  obs::Counter* batch_clamps = nullptr;
};

class TimingEngine {
 public:
  TimingEngine(const MachineConfig& cfg, FunctionalEngine& fn,
               InstrTrace* trace = nullptr,
               const EngineInstruments* metrics = nullptr);

  /// Simulates `prog` to completion with the engine selected by
  /// cfg.timing_mode and returns the run statistics. `control` installs a
  /// cooperative cancellation policy (shutdown token / wall-clock
  /// deadline) polled at scheduler wakeups; the engine raises
  /// SimCancelled when it fires. Polling never mutates machine state, so
  /// a run that completes is bit-identical with or without a control.
  RunStats run(const Program& prog, const RunControl* control = nullptr);

  /// Explicit-kernel entry points (differential tests, benchmarks).
  RunStats run_cycle_stepped(const Program& prog);
  RunStats run_event_driven(const Program& prog);

 private:
  struct RegRef {
    std::uint32_t slot = 0;
    std::uint64_t id = 0;  ///< 0 = none
  };

  struct RegState {
    RegRef writer;                 ///< active in-flight writer
    std::vector<RegRef> readers;   ///< active in-flight readers
  };

  /// Instruction accepted by CVA6, travelling to / waiting in the sequencer.
  /// vl/ew/group_regs are captured at issue: a later vsetvli in the sequencer
  /// pipeline must not retroactively change an older instruction's shape.
  struct Pending {
    VInstr in{};
    std::size_t prog_index = 0;
    std::uint64_t vl = 0;
    unsigned ew = 8;
    unsigned group_regs = 1;
    Cycle issued_at = 0;
    Cycle arrive_at = 0;
  };

  /// Why CVA6 made no forward progress in the cycle just processed; the
  /// event engine accrues the matching stall counter across skipped cycles
  /// (the condition can only change at a wakeup).
  enum class Cva6Stall : std::uint8_t { kNone, kScalarWait, kSeqFull };

  // -- per-cycle phases (exact semantics, shared by both kernels) -------------
  void step_cycle(Cycle t);
  void tick_units(Cycle t);
  void tick_unit(Cycle t, Unit u);
  void advance_head(Cycle t, Inflight& instr);
  void advance_arith(Cycle t, Inflight& instr);
  void advance_load(Cycle t, Inflight& instr);
  void advance_store(Cycle t, Inflight& instr);
  void advance_red_phases(Cycle t, Inflight& instr);
  void retire(Cycle t);
  void tick_dispatch(Cycle t);
  void tick_cva6(Cycle t);

  // -- event-driven fast-forward ----------------------------------------------
  /// Proposes every statically-known future event after cycle `t`.
  void propose_discrete_events(Cycle t, EventHorizon* horizon);
  /// Fast-forwards all unit heads through (t, *wend_excl); completions and
  /// reduction forecasts discovered on queue fronts shrink *wend_excl.
  void fast_forward_heads(Cycle t, Cycle* wend_excl);
  /// Closed-form / replay advancement of one head over [from, to]
  /// (to == kNeverCycle means "until it stalls or finishes").
  void advance_span(Inflight& instr, Cycle from, Cycle to);
  void advance_span_arith(Inflight& instr, Cycle from, Cycle to);
  void advance_span_load(Inflight& instr, Cycle from, Cycle to);
  void advance_span_store(Inflight& instr, Cycle from, Cycle to);

  // -- steady-state loop batching ---------------------------------------------
  //
  // The event engine detects when a strip-mined loop has reached steady
  // state — at two consecutive loop-period boundaries the whole machine
  // state (rebased to the boundary cycle / pc / instruction id) is
  // identical — and then retires K whole iterations per wakeup: replaying
  // the recorded per-iteration stat and trace deltas, executing the
  // batched ops architecturally, and relabelling the live in-flight window
  // K periods into the future. Anything that can change the signature
  // (a vl tail, a mid-loop vsetvli grant change, a non-arithmetic address
  // progression, a new conflict pattern) makes the snapshots differ or the
  // program-side checks shrink K, and the engine falls back to per-wakeup
  // simulation — the batched path is bit-identical to the oracle by
  // construction (see timing_event.cpp for the full argument).
  struct LoopCheckpoint {
    bool valid = false;
    Cycle t = 0;
    std::size_t pc = 0;
    std::uint64_t next_id = 0;
    RunStats stats{};
    std::size_t trace_len = 0;
    std::vector<std::uint64_t> state;  ///< canonical rebased serialization
    /// Raw values of the timing-inert fields canonicalized out of `state`
    /// (warmup fast-forward); compared only to tell a projected engage from
    /// an exact one.
    std::vector<std::uint64_t> shadow;
  };
  /// One trace record retired inside the recorded window, rebased to the
  /// window-start (cycle, id, pc) so it can be replayed for any iteration.
  struct TraceDelta {
    std::int64_t id = 0;
    std::int64_t prog = 0;
    std::uint64_t vl = 0;
    Unit unit = Unit::kNone;
    std::int64_t issued = 0;
    std::int64_t dispatched = 0;
    std::int64_t first_result = 0;
    bool has_first_result = false;
    std::int64_t completed = 0;
    /// Dominant-stall annotation: cycle-independent (byte-slot counts repeat
    /// exactly period over period), so it replays verbatim.
    std::uint8_t stall_reason = static_cast<std::uint8_t>(kNumStallReasons);
    std::uint64_t stall_slots = 0;
  };
  /// Computes op signatures + periodic regions + per-region address checks.
  void prepare_loop_batching();
  /// Post-step hook: records/compares boundary checkpoints and, in steady
  /// state, batches; *t_io advances by K whole periods when it returns true.
  bool loop_checkpoint(Cycle* t_io);
  void snapshot_state(Cycle t, std::vector<std::uint64_t>* out,
                      std::vector<std::uint64_t>* shadow) const;
  [[nodiscard]] std::uint64_t batchable_periods(const LoopRegion& r) const;
  /// First barrier boundary >= b in the current region (region end when
  /// none): batches may not cross it (see the per-op progression gate in
  /// prepare_loop_batching).
  [[nodiscard]] std::size_t next_barrier(std::size_t b) const;
  /// First barrier boundary a batch from the current state may not cross,
  /// looking back to the oldest still-pending sequencer op (whose dispatch —
  /// and therefore address consumption — happens inside the batched window).
  [[nodiscard]] std::size_t replay_barrier_limit(const LoopRegion& r) const;
  void apply_batch(const LoopRegion& r, std::uint64_t k, Cycle d,
                   std::uint64_t id_delta, Cycle* t_io);

  /// Effective element cap from one dependency over [u, ...], linearised.
  struct CapLine {
    std::uint64_t value = 0;   ///< cap at cycle u
    std::uint64_t slope = 0;   ///< per-cycle growth (integer)
    Cycle until = kNeverCycle; ///< last cycle this linearisation holds
    bool fractional = false;   ///< producer segment has a non-integer slope
  };
  [[nodiscard]] CapLine dep_cap(const Dep& d, const Inflight& c, Cycle u) const;
  [[nodiscard]] CapLine combined_cap(const Inflight& c, Cycle u, Cycle to) const;

  // -- stall attribution (see "Cycle-attribution stall taxonomy" in
  //    timing.cpp) ------------------------------------------------------------
  /// Attributes every (cycle × lane-FPU byte-slot) of [a, b] to exactly one
  /// StallReason or to fpu_busy_slots. Shared verbatim by both kernels: the
  /// oracle calls it per executed cycle, the event engine once per wakeup
  /// cycle plus once per fast-forward window — yielding bit-identical
  /// RunStats::stall_cycles[].
  void attribute_range(Cycle a, Cycle b);
  /// Classifies one sub-range [x, y] whose acting FPU head is `acting`
  /// (nullptr = no FPU work in flight); charges stalls + busy slots.
  void attribute_piece(Cycle x, Cycle y, Inflight* acting);
  /// Stall reason for cycles where no FPU instruction is in flight; constant
  /// over any attribution range except the mem first-beat split (handled by
  /// the caller via `fr_min`).
  [[nodiscard]] StallReason classify_no_fpu(Cycle u) const;
  /// Blame for an acting head that is past start-up but under-producing.
  [[nodiscard]] StallReason classify_dep_limited(const Inflight& acting) const;
  /// Earliest first-beat cycle over in-flight memory instructions
  /// (kNeverCycle when none has produced yet). Monotone-stable: both
  /// engines agree on the predicate `u >= mem_first_beat_min()` for every
  /// attributed cycle u.
  [[nodiscard]] Cycle mem_first_beat_min() const;
  /// Byte width of one produced element slot for an FPU op (widening ops
  /// occupy the destination width, capped at the 8-byte lane datapath).
  [[nodiscard]] static unsigned fpu_slot_width(const Inflight& instr);

  // -- helpers ----------------------------------------------------------------
  void reset_run(const Program& prog);
  [[nodiscard]] bool drained() const;
  [[nodiscard]] const Inflight* find(const RegRef& ref) const;
  [[nodiscard]] std::uint64_t avail_elems(Cycle t, const Inflight& instr) const;
  [[nodiscard]] bool full_dep_visible(Cycle t, const Dep& d,
                                      const Inflight& p) const;
  [[nodiscard]] bool reg_pending_write(unsigned reg) const;
  [[nodiscard]] bool mem_conflict(const Pending& p) const;
  [[nodiscard]] std::uint64_t head_rate256(const Inflight& instr) const;
  [[nodiscard]] Cycle reduction_done_at(const Inflight& instr, Cycle finish) const;
  void account(Unit u, const Inflight& instr, std::uint64_t adv);
  void finish_producing(Cycle t, Inflight& instr);
  void release_claims(const Inflight& instr);
  [[noreturn]] void fail_deadlock(Cycle t) const;

  // -- observability (obs/metrics.hpp; all no-ops when metrics_ is null) ------
  /// Attributes `span` cycles starting at `t` to each unit as busy, stall
  /// or idle from its queue state, and samples in-flight occupancy. The
  /// event engine calls this per wakeup window (unit state is constant
  /// between wakeups by construction); the oracle calls it per cycle.
  void metrics_account_units(Cycle t, Cycle span);
  /// Folds the per-run provenance counters into the registry after a run.
  void metrics_end_run();
  /// Counts one batching rejection under `r` (RunStats + metrics + marker).
  void count_batch_reject(BatchReject r, Cycle t);

  const MachineConfig& cfg_;
  FunctionalEngine& fn_;
  InstrTrace* trace_ = nullptr;
  /// Pre-bound instrument handles (owned by the Machine, which re-binds
  /// them only when the attached registry changes); null when no registry
  /// is attached to this run.
  const EngineInstruments* metrics_ = nullptr;
  // Per-run plain accumulators behind the instruments: the per-wakeup
  // accounting path counts here (no atomic traffic) and metrics_end_run
  // folds the totals into the shared registry once. Final registry values
  // are identical to counting per wakeup — addition commutes.
  std::array<std::uint64_t, kNumUnits> acc_unit_busy_{};
  std::array<std::uint64_t, kNumUnits> acc_unit_stall_{};
  std::array<std::uint64_t, kNumUnits> acc_unit_idle_{};
  std::array<std::uint64_t, obs::Histogram::kBuckets> acc_occ_buckets_{};
  std::uint64_t acc_occ_count_ = 0;
  std::uint64_t acc_occ_sum_ = 0;
  std::uint64_t acc_occ_max_ = 0;
  /// The interconnect descriptor both kernels consume: every REQI/GLSU/
  /// RINGI latency and structure number flows through here (declared
  /// before the models, which are built from it).
  InterconnectSpec ispec_;
  ReqiModel reqi_;
  GlsuModel glsu_;
  RingModel ring_;
  LaneGroupModel lanes_;
  Cva6Model cva6_;
  RunStats stats_{};

  const Program* prog_ = nullptr;
  std::size_t pc_ = 0;
  Cycle cva6_free_ = 0;

  std::uint64_t next_id_ = 1;
  InflightPool pool_;
  std::array<std::deque<std::uint32_t>, kNumUnits> unitq_;  ///< slot ids
  std::deque<Pending> seq_;
  std::array<RegState, kNumVregs> regs_;

  // Per-wakeup outcome flags consumed by the event loop.
  bool dispatched_this_cycle_ = false;
  Cva6Stall cva6_stall_ = Cva6Stall::kNone;

  // Byte-slots produced at the current wakeup cycle by FPU instructions that
  // retired before attribute_range ran (possible only with a zero FPU chain
  // lag); folded into the next attribution so the slot partition stays total.
  std::uint64_t retired_busy_pending_ = 0;

  // Cooperative cancellation (sim/cancel.hpp); null when the run has no
  // shutdown token or deadline — the common case costs one pointer test
  // per wakeup.
  const RunControl* control_ = nullptr;

  // Liveness tracking (wakeup-counting watchdog; see sim/scheduler.hpp).
  // The cycle-stepped oracle polls watchdog_.progress_total() every few
  // thousand cycles; the event engine uses the wakeup budget directly.
  WakeupWatchdog watchdog_;
  std::uint64_t last_progress_events_ = 0;
  Cycle last_progress_cycle_ = 0;

  // Scratch for fast_forward_heads (kept to avoid per-wakeup allocation).
  std::vector<std::uint32_t> ff_processed_;

  // Loop-batching state (event engine only; see prepare_loop_batching).
  std::vector<OpKey> op_keys_;
  std::vector<LoopRegion> loop_regions_;
  /// Per region: sorted period-boundary op indices a batch may not cross —
  /// boundaries where some bounded mem op's address breaks its per-position
  /// arithmetic progression, changes its bus phase (unit-stride skew), or
  /// flips a pairwise conflict outcome relative to one period earlier.
  std::vector<std::vector<std::size_t>> loop_barriers_;
  /// Per region: the largest boundary from which a whole barrier-free
  /// period still lies ahead (0 = region dead — no boundary can engage).
  /// Checkpoint recording stops past it; this is the cheap early-out that
  /// keeps dense-barrier regions from snapshotting every period.
  std::vector<std::size_t> loop_last_engageable_;
  std::size_t loop_region_idx_ = 0;
  std::size_t last_ckpt_pc_ = static_cast<std::size_t>(-1);
  LoopCheckpoint ckpt_;
  std::vector<TraceDelta> trace_deltas_;  ///< scratch for the recorded window
  std::vector<std::uint64_t> snap_scratch_;
  std::vector<std::uint64_t> shadow_scratch_;
};

}  // namespace araxl

#endif  // ARAXL_MACHINE_TIMING_HPP
