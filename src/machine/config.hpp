// Machine configuration for the two modelled microarchitectures:
//
//  * AraXL  — C clusters x 4 lanes, REQI/GLSU/RINGI top-level interconnects
//             (paper Fig. 2), VLEN = 1024 bit x total lanes up to the RVV
//             maximum of 64 Kibit at 64 lanes. Beyond 64 lanes the
//             topology becomes hierarchical (paper §V direction): G groups
//             of C clusters, per-group cluster rings joined by a group-
//             level ring and a deeper REQI broadcast tree — expressed by
//             Topology{clusters, lanes, groups} and realized by the
//             InterconnectSpec descriptor (src/interconnect/spec.hpp).
//  * Ara2   — the baseline lumped design: one "cluster" of L lanes whose
//             MASKU/SLDU/VLSU are all-to-all connected (single-cycle
//             align+shuffle, no top-level interfaces, standard mask layout).
//
// All latency knobs of the paper's latency-tolerance study (Fig. 5/7) are
// explicit parameters: reqi_regs, glsu_regs, ring_regs.
#ifndef ARAXL_MACHINE_CONFIG_HPP
#define ARAXL_MACHINE_CONFIG_HPP

#include <cstdint>
#include <string>

#include "vrf/layout.hpp"
#include "vrf/mapping.hpp"

namespace araxl {

struct InterconnectSpec;

/// Named machine presets. A kind selects an InterconnectSpec preset
/// constructor (see interconnect()) — it is a configuration spelling, not
/// something models branch on: everything downstream of MachineConfig
/// consumes the descriptor.
enum class MachineKind : std::uint8_t { kAraXL, kAra2 };

/// Simulation-kernel selection. `kEventDriven` is the production engine: it
/// jumps simulated time to the next cycle where machine state can change
/// and advances in-flight work in closed form (bit-identical RunStats to
/// the oracle). `kCycleStepped` is the reference oracle that ticks every
/// cycle; keep it for calibration, differential testing, and debugging.
enum class TimingMode : std::uint8_t { kEventDriven, kCycleStepped };

struct MachineConfig {
  MachineKind kind = MachineKind::kAraXL;
  Topology topo{4, 4};  ///< default: 16-lane AraXL (4 clusters x 4 lanes)

  TimingMode timing_mode = TimingMode::kEventDriven;

  /// Bits per vector register; 0 selects the paper's configuration rule
  /// VLEN = 1024 x total lanes (64 Kibit at 64 lanes).
  std::uint64_t vlen_bits = 0;

  std::uint64_t mem_size_bytes = 64ull << 20;

  // ---- latency-tolerance knobs (paper Fig. 5) -----------------------------
  unsigned reqi_regs = 0;  ///< extra REQI register cuts (+1 => ack +2 cycles)
  unsigned glsu_regs = 0;  ///< extra GLSU pipeline registers (+4 => +8 cycles)
  unsigned ring_regs = 0;  ///< extra RINGI registers per hop (+1 => hop +1)

  // ---- microarchitectural constants ---------------------------------------
  unsigned fpu_latency = 5;        ///< FPU result latency (chaining lag)
  unsigned alu_latency = 2;        ///< ALU result latency
  unsigned sldu_latency = 3;       ///< slide-unit result latency
  unsigned load_chain_lag = 3;     ///< VRF write -> operand read lag for loads
  unsigned div_cycles_per_elem = 12;  ///< unpipelined divider occupancy
  unsigned unit_start_latency = 4;    ///< dispatch -> first result (arith)
  unsigned unit_queue_depth = 4;      ///< per-unit instruction queue
  unsigned seq_queue_depth = 8;       ///< sequencer instruction queue
  unsigned dcache_load_latency = 3;   ///< CVA6 scalar load (d-cache hit)
  unsigned l2_latency = 12;           ///< L2 access latency (beyond GLSU pipe)
  /// Liveness watchdog budget (wakeups without progress before the engine
  /// declares a deadlock); 0 selects WakeupWatchdog::kDefaultBudget. Tiny
  /// values are for tests that prove batched fast-forwards count as
  /// progress.
  std::uint64_t watchdog_budget = 0;

  unsigned red_step_latency = 4;      ///< per inter-lane reduction step
  unsigned red_add_latency = 8;       ///< SLDU round trip + FPU add per
                                      ///< inter-cluster tree step
  unsigned writeback_latency = 2;     ///< final scalar writeback of reductions

  // ---- derived ------------------------------------------------------------
  [[nodiscard]] std::uint64_t effective_vlen() const;
  [[nodiscard]] unsigned total_lanes() const { return topo.total_lanes(); }

  /// The interconnect descriptor for this machine: the kind picks a preset
  /// constructor (InterconnectSpec::araxl / ::ara2) and the latency knobs
  /// are threaded through. This is the ONLY place MachineKind is mapped to
  /// interconnect structure — the models and PPA layer consume the
  /// returned descriptor and never branch on the kind.
  [[nodiscard]] InterconnectSpec interconnect() const;

  /// Memory bandwidth per direction (read and write channels are separate):
  /// 8 bytes/lane/cycle, i.e. 64-bit per lane (see DESIGN.md §3 on the
  /// Fig. 2 label discrepancy).
  [[nodiscard]] std::uint64_t mem_bytes_per_cycle() const {
    return 8ull * total_lanes();
  }

  [[nodiscard]] MaskLayout mask_layout() const {
    return kind == MachineKind::kAraXL ? MaskLayout::kLaneLocal
                                       : MaskLayout::kStandard;
  }

  /// Throws ContractViolation if inconsistent.
  void validate() const;

  /// "64L-AraXL" / "8L-Ara2" display name.
  [[nodiscard]] std::string name() const;

  // ---- factories -----------------------------------------------------------
  /// AraXL instance with `total_lanes` lanes in 4-lane clusters (the paper's
  /// building block; 8..64 lanes => 2..16 clusters, flat). Beyond 64 lanes
  /// the flat ring would exceed the paper's 16-stop ceiling, so the factory
  /// becomes hierarchical: 8-cluster groups (the largest ring that holds
  /// the 1.40 GHz timing corner) joined by a group-level ring — 128 lanes
  /// => 4 groups x 8 clusters x 4 lanes.
  static MachineConfig araxl(unsigned total_lanes);

  /// AraXL with an explicit cluster shape (design-space exploration; the
  /// paper fixes lanes_per_cluster = 4).
  static MachineConfig araxl_shaped(unsigned clusters, unsigned lanes_per_cluster);

  /// Hierarchical AraXL with an explicit three-level shape:
  /// `groups` groups x `clusters_per_group` clusters x `lanes_per_cluster`
  /// lanes (groups == 1 degenerates to araxl_shaped).
  static MachineConfig araxl_hier(unsigned groups, unsigned clusters_per_group,
                                  unsigned lanes_per_cluster);

  /// Baseline Ara2 with `lanes` lanes (2..16 per the Ara2 paper).
  static MachineConfig ara2(unsigned lanes);
};

}  // namespace araxl

#endif  // ARAXL_MACHINE_CONFIG_HPP
