#include "machine/inflight.hpp"

// Inflight is a passive aggregate; this translation unit anchors the module.
