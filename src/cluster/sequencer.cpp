#include "cluster/sequencer.hpp"

namespace araxl {

std::pair<unsigned, unsigned> write_group(const VInstr& in, unsigned group_regs) {
  const OpSpec& spec = op_spec(in.op);
  if (!spec.writes_vd) return {0, 0};
  if (spec.writes_mask || spec.is_reduction || in.op == Op::kVfmvSF) {
    return {in.vd, 1};
  }
  if (spec.widens) return {in.vd, 2 * group_regs};  // EEW = 2*SEW destination
  return {in.vd, group_regs};
}

ReadGroups read_groups(const VInstr& in, unsigned group_regs) {
  const OpSpec& spec = op_spec(in.op);
  ReadGroups g;
  const auto add = [&g](unsigned base, unsigned count) {
    g.base[g.n] = base;
    g.count[g.n] = count;
    ++g.n;
  };
  const bool mask_src = spec.unit == Unit::kMasku;  // vmand.mm etc.
  const bool vs1_is_mask = in.op == Op::kVcompressVM;  // single mask register
  if (spec.reads_vs1) {
    add(in.vs1, (mask_src || spec.is_reduction || vs1_is_mask) ? 1 : group_regs);
  }
  if (spec.reads_vs2) add(in.vs2, mask_src ? 1 : group_regs);
  if (spec.reads_vd) add(in.vd, group_regs);
  if (in.masked || in.op == Op::kVmergeVVM || in.op == Op::kVfmergeVFM) add(0, 1);
  return g;
}

std::int64_t slide_offset(const VInstr& in) {
  switch (in.op) {
    case Op::kVfslide1down: return 1;
    case Op::kVfslide1up: return -1;
    case Op::kVslidedownVX: return in.xs;
    case Op::kVslideupVX: return -in.xs;
    default: return 0;
  }
}

}  // namespace araxl
