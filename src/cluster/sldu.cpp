#include "cluster/sldu.hpp"

namespace araxl {

bool slide_elem_is_remote(const VrfMapping& map, std::uint64_t i, std::int64_t k,
                          std::uint64_t vl) {
  const std::int64_t src = static_cast<std::int64_t>(i) + k;
  if (src < 0 || src >= static_cast<std::int64_t>(vl)) return false;  // fill value
  return map.cluster_of(i) != map.cluster_of(static_cast<std::uint64_t>(src));
}

std::uint64_t slide_remote_elems(const VrfMapping& map, std::int64_t k,
                                 std::uint64_t vl) {
  std::uint64_t remote = 0;
  for (std::uint64_t i = 0; i < vl; ++i) {
    if (slide_elem_is_remote(map, i, k, vl)) ++remote;
  }
  return remote;
}

}  // namespace araxl
