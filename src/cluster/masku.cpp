#include "cluster/masku.hpp"

#include "common/bits.hpp"

namespace araxl {

std::uint64_t masku_bits_to_move(const VrfMapping& map, MaskLayout layout,
                                 std::uint64_t vl) {
  std::uint64_t moved = 0;
  for (std::uint64_t i = 0; i < vl; ++i) {
    const MaskBitLoc loc = mask_bit_loc(map, layout, i);
    if (loc.cluster != map.cluster_of(i) || loc.lane != map.lane_of(i)) ++moved;
  }
  return moved;
}

std::uint64_t masku_distribution_cycles(std::uint64_t bits_to_move) {
  return ceil_div(bits_to_move, 64);
}

}  // namespace araxl
