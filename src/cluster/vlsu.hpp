// Per-cluster Vector Load-Store Unit — paper §III-B.3.
//
// On AraXL the local VLSU only shuffles already-aligned bytes to its four
// lanes (the GLSU did the aligning); on Ara2 the lumped A2A VLSU does both
// in one cycle, which is what limits its scalability. This module holds the
// local shuffle math and the predicate for accesses that degrade to
// element-granular beats.
#ifndef ARAXL_CLUSTER_VLSU_HPP
#define ARAXL_CLUSTER_VLSU_HPP

#include <cstdint>

#include "isa/instr.hpp"
#include "vrf/mapping.hpp"

namespace araxl {

/// True for strided/indexed accesses, which are "supported, albeit at
/// lower throughput" (paper §III-A): one element per cluster per cycle.
bool elementwise_mem_op(Op op);

/// Lane (within the owning cluster) that receives element `idx` of a
/// unit-stride access — the local shuffle function of the VLSU. Must agree
/// with the VRF mapping; tests enforce this.
unsigned vlsu_lane_for_element(const VrfMapping& map, std::uint64_t idx);

/// Bytes of a `vl` x `ew` unit-stride access handled by one lane of one
/// cluster (balanced up to one row by construction of the mapping).
std::uint64_t vlsu_lane_byte_share(const VrfMapping& map, std::uint64_t vl,
                                   unsigned ew, unsigned cluster, unsigned lane);

}  // namespace araxl

#endif  // ARAXL_CLUSTER_VLSU_HPP
