// Per-cluster Slide Unit — paper §III-B.4 and Fig. 4.
//
// A slide executes in two parts: the local slide (elements whose source
// lives in the same cluster) and the remote slide (boundary elements
// arriving over the RINGI). This module computes which elements of a slide
// are remote, which the ring model turns into transfer plans.
#ifndef ARAXL_CLUSTER_SLDU_HPP
#define ARAXL_CLUSTER_SLDU_HPP

#include <cstdint>

#include "vrf/mapping.hpp"

namespace araxl {

/// True iff destination element `i` of a slide by `k` (vd[i] = vs2[i+k])
/// sources its data from a different cluster — the "remote slide" part.
bool slide_elem_is_remote(const VrfMapping& map, std::uint64_t i, std::int64_t k,
                          std::uint64_t vl);

/// Number of remote elements in a slide of `vl` elements by `k`.
std::uint64_t slide_remote_elems(const VrfMapping& map, std::int64_t k,
                                 std::uint64_t vl);

}  // namespace araxl

#endif  // ARAXL_CLUSTER_SLDU_HPP
