// Mask Unit model — paper §III-B.5.
//
// Ara2's MASKU distributes mask bits across lanes bit-by-bit through an
// all-to-all network (1105 kGE at 16 lanes); AraXL avoids the traffic with
// the lane-local mask byte layout, shrinking the MASKU to 328 kGE. This
// module quantifies the traffic difference: how many mask bits must move
// between lanes to consume a mask register under each layout.
#ifndef ARAXL_CLUSTER_MASKU_HPP
#define ARAXL_CLUSTER_MASKU_HPP

#include <cstdint>

#include "vrf/layout.hpp"

namespace araxl {

/// Number of the first `vl` mask bits that are NOT already resident in the
/// lane of the element they guard — the bits Ara2's A2A MASKU must move
/// (zero under the AraXL layout).
std::uint64_t masku_bits_to_move(const VrfMapping& map, MaskLayout layout,
                                 std::uint64_t vl);

/// Cycles Ara2's MASKU needs to distribute those bits over its 64-bit
/// collation network.
std::uint64_t masku_distribution_cycles(std::uint64_t bits_to_move);

}  // namespace araxl

#endif  // ARAXL_CLUSTER_MASKU_HPP
