#include "cluster/vlsu.hpp"

namespace araxl {

bool elementwise_mem_op(Op op) {
  return op == Op::kVlse || op == Op::kVsse || op == Op::kVluxei ||
         op == Op::kVsuxei;
}

unsigned vlsu_lane_for_element(const VrfMapping& map, std::uint64_t idx) {
  return map.lane_of(idx);
}

std::uint64_t vlsu_lane_byte_share(const VrfMapping& map, std::uint64_t vl,
                                   unsigned ew, unsigned cluster, unsigned lane) {
  std::uint64_t elems = 0;
  for (std::uint64_t i = lane; i < vl; i += map.topology().lanes) {
    if (map.cluster_of(i) == cluster) ++elems;
  }
  return elems * ew;
}

}  // namespace araxl
