// Sequencer / dispatcher rules — paper Fig. 2 "Seq + Disp".
//
// Each cluster's sequencer accepts the broadcast instruction stream in
// order, tracks register claims, and dispatches to per-unit queues. Because
// AraXL's clusters run in lockstep on the same stream, the model keeps one
// logical sequencer. This module holds the pure rules: which register
// groups an instruction writes/reads, and the element offset a slide
// imposes on its chained source.
#ifndef ARAXL_CLUSTER_SEQUENCER_HPP
#define ARAXL_CLUSTER_SEQUENCER_HPP

#include <cstdint>
#include <utility>

#include "isa/instr.hpp"

namespace araxl {

/// Destination register group (base, count) claimed by `in` under an LMUL
/// group of `group_regs` registers. Mask destinations, reductions and
/// vfmv.s.f write a single register.
std::pair<unsigned, unsigned> write_group(const VInstr& in, unsigned group_regs);

/// Source register groups (vs1, vs2, vd-as-source, v0 mask).
struct ReadGroups {
  unsigned base[4] = {0, 0, 0, 0};
  unsigned count[4] = {0, 0, 0, 0};
  unsigned n = 0;
};

ReadGroups read_groups(const VInstr& in, unsigned group_regs);

/// Element offset a slide imposes on its vs2 chaining dependency: consumer
/// element i needs producer element i + offset.
std::int64_t slide_offset(const VInstr& in);

}  // namespace araxl

#endif  // ARAXL_CLUSTER_SEQUENCER_HPP
