// Extension kernels beyond the paper's Table I: CSR SpMV (indexed-access
// path) and STREAM triad (bandwidth probe), across machine scales.
// SpMV shows the cost of the "supported, albeit at lower throughput"
// strided/indexed path; the triad shows how close streaming kernels get to
// the 8 B/lane/cycle read-channel bound.
#include <cstdio>

#include "bench_util.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"

using namespace araxl;

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header("Extension kernels: spmv (CSR) and stream_triad",
                      "beyond-paper workloads over the same substrate");

  std::vector<unsigned> lane_counts = {8, 16};
  if (!quick) {
    lane_counts.push_back(32);
    lane_counts.push_back(64);
  }

  for (const char* kname : {"spmv", "stream_triad"}) {
    TextTable table({"config", "cycles", "DP-FLOP/cycle", "FPU util",
                     "read GB-eq/cycle"});
    for (std::size_t c = 1; c < 5; ++c) table.align_right(c);
    for (const unsigned lanes : lane_counts) {
      const MachineConfig cfg = MachineConfig::araxl(lanes);
      Machine m(cfg);
      auto kernel = make_kernel(kname);
      const Program prog = kernel->build(m, 512);
      const RunStats s = m.run(prog);
      const VerifyResult vr = kernel->verify(m);
      check(vr.ok(kernel->tolerance()), "extension kernel verification failed");
      const double bytes_per_cycle =
          static_cast<double>(s.mem_read_bytes) / static_cast<double>(s.cycles);
      table.add_row({cfg.name(), fmt_group(s.cycles), fmt_f(s.flop_per_cycle(), 2),
                     fmt_pct(s.fpu_util(), 1),
                     fmt_f(bytes_per_cycle / static_cast<double>(
                                                 cfg.mem_bytes_per_cycle()),
                           2)});
    }
    std::printf("--- %s at 512 B/lane ---\n%s\n", kname, table.render().c_str());
  }
  std::printf("stream_triad's read column shows achieved / peak read "
              "bandwidth; spmv is gather-bound (one element per cluster per "
              "cycle), far below the FPU peak by design.\n");
  return 0;
}
