// Figure 7 — latency tolerance of the 64-lane AraXL.
//
// Re-runs every kernel with sequential cuts inserted into the three
// top-level interfaces (paper Fig. 5 setup):
//   (a) GLSU  +4 registers  => +8 cycles memory request-response latency
//   (b) REQI  +1 register   => instruction acknowledged 2 cycles later
//   (c) RINGI +1 register   => +1 cycle per ring hop
// and prints the FPU-utilization drop versus the unmodified baseline.
// Paper claims: (a) <= 1.5% in the long-vector regime, (b) max 5.3%
// (fconv2d) / 3.2% (jacobi2d) at 128 B/lane, amortized at 512 B/lane,
// (c) <= 1.4%.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"

using namespace araxl;

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header("Figure 7: latency tolerance (64L AraXL)",
                      "paper Fig. 7 — FPU utilization drop with +4 GLSU / "
                      "+1 REQI / +1 RINGI register cuts");

  const std::vector<std::uint64_t> sizes =
      quick ? std::vector<std::uint64_t>{128, 512}
            : std::vector<std::uint64_t>{128, 256, 512};
  const char* kernels[] = {"fmatmul", "fconv2d", "jacobi2d",
                           "fdotproduct", "exp", "softmax"};

  struct Variant {
    const char* label;
    unsigned glsu, reqi, ring;
  };
  const Variant variants[] = {
      {"(a) GLSU +4 regs", 4, 0, 0},
      {"(b) REQI +1 reg", 0, 1, 0},
      {"(c) RINGI +1 reg", 0, 0, 1},
  };

  for (const Variant& v : variants) {
    TextTable table({"kernel", "B/lane", "baseline util", "modified util",
                     "util drop"});
    table.align_right(1);
    table.align_right(2);
    table.align_right(3);
    table.align_right(4);
    double max_drop = 0.0;
    const char* max_kernel = "";
    for (const char* kname : kernels) {
      for (const std::uint64_t bpl : sizes) {
        MachineConfig base = MachineConfig::araxl(64);
        MachineConfig mod = base;
        mod.glsu_regs = v.glsu;
        mod.reqi_regs = v.reqi;
        mod.ring_regs = v.ring;
        const RunStats s0 = bench::run_kernel(base, kname, bpl);
        const RunStats s1 = bench::run_kernel(mod, kname, bpl);
        const double drop = s0.fpu_util() - s1.fpu_util();
        if (drop > max_drop) {
          max_drop = drop;
          max_kernel = kname;
        }
        table.add_row({kname, std::to_string(bpl), fmt_pct(s0.fpu_util(), 1),
                       fmt_pct(s1.fpu_util(), 1), fmt_pct(drop, 1)});
      }
      table.add_rule();
    }
    std::printf("--- %s ---\n%s", v.label, table.render().c_str());
    std::printf("max utilization drop: %s (%s)\n\n", fmt_pct(max_drop, 1).c_str(),
                max_kernel);
  }
  std::printf("paper reference: (a) <=1.5%% long-vector, (b) max 5.3%% fconv2d "
              "/ 3.2%% jacobi2d at 128 B/lane and ~0%% at 512, (c) <=1.4%%\n");
  return 0;
}
