// Figure 7 — latency tolerance of the 64-lane AraXL.
//
// Re-runs every kernel with sequential cuts inserted into the three
// top-level interfaces (paper Fig. 5 setup):
//   (a) GLSU  +4 registers  => +8 cycles memory request-response latency
//   (b) REQI  +1 register   => instruction acknowledged 2 cycles later
//   (c) RINGI +1 register   => +1 cycle per ring hop
// and prints the FPU-utilization drop versus the unmodified baseline.
// Paper claims: (a) <= 1.5% in the long-vector regime, (b) max 5.3%
// (fconv2d) / 3.2% (jacobi2d) at 128 B/lane, amortized at 512 B/lane,
// (c) <= 1.4%.
//
// Baseline and all three variants form one driver sweep (the same grid the
// CLI's `araxl sweep --fig7` runs); the drop tables are formatting.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"
#include "driver/spec.hpp"

using namespace araxl;

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header("Figure 7: latency tolerance (64L AraXL)",
                      "paper Fig. 7 — FPU utilization drop with +4 GLSU / "
                      "+1 REQI / +1 RINGI register cuts");

  struct Variant {
    const char* title;
    const char* label;  ///< config-spec label in the sweep
  };
  const Variant variants[] = {
      {"(a) GLSU +4 regs", "araxl:64:glsu=4"},
      {"(b) REQI +1 reg", "araxl:64:reqi=1"},
      {"(c) RINGI +1 reg", "araxl:64:ring=1"},
  };

  // Labels double as driver config specs, so label and knob can't drift.
  driver::SweepSpec spec;
  spec.configs.push_back(driver::parse_config_spec("araxl:64"));
  for (const Variant& v : variants) {
    spec.configs.push_back(driver::parse_config_spec(v.label));
  }
  spec.kernels = {"fmatmul", "fconv2d", "jacobi2d", "fdotproduct", "exp",
                  "softmax"};
  spec.bytes_per_lane = quick ? std::vector<std::uint64_t>{128, 512}
                              : std::vector<std::uint64_t>{128, 256, 512};
  const bench::SweepResults results = bench::run_sweep(spec);

  for (const Variant& v : variants) {
    TextTable table({"kernel", "B/lane", "baseline util", "modified util",
                     "util drop"});
    table.align_right(1);
    table.align_right(2);
    table.align_right(3);
    table.align_right(4);
    double max_drop = 0.0;
    std::string max_kernel;
    for (const std::string& kname : spec.kernels) {
      for (const std::uint64_t bpl : spec.bytes_per_lane) {
        const double u0 = results.stats("araxl:64", kname, bpl).fpu_util();
        const double u1 = results.stats(v.label, kname, bpl).fpu_util();
        const double drop = u0 - u1;
        if (drop > max_drop) {
          max_drop = drop;
          max_kernel = kname;
        }
        table.add_row({kname, std::to_string(bpl), fmt_pct(u0, 1),
                       fmt_pct(u1, 1), fmt_pct(drop, 1)});
      }
      table.add_rule();
    }
    std::printf("--- %s ---\n%s", v.title, table.render().c_str());
    std::printf("max utilization drop: %s (%s)\n\n", fmt_pct(max_drop, 1).c_str(),
                max_kernel.c_str());
  }
  std::printf("paper reference: (a) <=1.5%% long-vector, (b) max 5.3%% fconv2d "
              "/ 3.2%% jacobi2d at 128 B/lane and ~0%% at 512, (c) <=1.4%%\n");
  return 0;
}
