// Shared helpers for the table/figure bench binaries.
#ifndef ARAXL_BENCH_BENCH_UTIL_HPP
#define ARAXL_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "kernels/common.hpp"
#include "machine/machine.hpp"

namespace araxl::bench {

/// Runs `kernel_name` at the weak-scaling point `bytes_per_lane` on `cfg`
/// and returns the stats (verifying the result unless `verify` is false).
inline RunStats run_kernel(const MachineConfig& cfg, std::string_view kernel_name,
                           std::uint64_t bytes_per_lane, bool verify = true) {
  Machine m(cfg);
  auto kernel = make_kernel(kernel_name);
  const Program prog = kernel->build(m, bytes_per_lane);
  const RunStats stats = m.run(prog);
  if (verify) {
    const VerifyResult vr = kernel->verify(m);
    check(vr.ok(kernel->tolerance()),
          "kernel verification failed inside bench harness");
  }
  return stats;
}

/// True when the bench was invoked with the given flag.
inline bool has_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

inline void print_header(std::string_view title, std::string_view paper_ref) {
  std::printf("==== %s ====\n", std::string(title).c_str());
  std::printf("reproduces: %s\n\n", std::string(paper_ref).c_str());
}

}  // namespace araxl::bench

#endif  // ARAXL_BENCH_BENCH_UTIL_HPP
