// Shared helpers for the table/figure bench binaries.
//
// Every bench runs its measurements through the experiment driver
// (src/driver/): declare a SweepSpec, let the worker pool execute the grid
// (one Machine per job, all cores by default), then format tables from the
// result set. Single-point helpers wrap the same path.
#ifndef ARAXL_BENCH_BENCH_UTIL_HPP
#define ARAXL_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/contracts.hpp"
#include "driver/job.hpp"
#include "driver/runner.hpp"
#include "machine/machine.hpp"

namespace araxl::bench {

/// Driver results addressable by (config label, kernel, bytes-per-lane).
class SweepResults {
 public:
  explicit SweepResults(std::vector<driver::JobResult> results)
      : results_(std::move(results)) {}

  [[nodiscard]] const std::vector<driver::JobResult>& all() const {
    return results_;
  }

  /// Result of one grid point; fails the bench when the job is missing or
  /// errored (benches must not silently print holes).
  [[nodiscard]] const driver::JobResult& at(std::string_view config_label,
                                            std::string_view kernel,
                                            std::uint64_t bytes_per_lane) const {
    for (const driver::JobResult& r : results_) {
      if (r.job.config_label == config_label && r.job.kernel == kernel &&
          r.job.bytes_per_lane == bytes_per_lane) {
        check(r.ok, "bench job failed: " + r.error);
        return r;
      }
    }
    fail("bench queried a grid point outside its sweep: " +
         std::string(config_label) + "/" + std::string(kernel));
  }

  [[nodiscard]] const RunStats& stats(std::string_view config_label,
                                      std::string_view kernel,
                                      std::uint64_t bytes_per_lane) const {
    return at(config_label, kernel, bytes_per_lane).stats;
  }

 private:
  std::vector<driver::JobResult> results_;
};

/// Executes the sweep on `workers` threads (0 = all hardware threads) and
/// returns the addressable result set.
inline SweepResults run_sweep(const driver::SweepSpec& spec,
                              unsigned workers = 0) {
  driver::RunnerOptions opts;
  opts.workers = workers;
  opts.verify = true;
  return SweepResults(driver::run_sweep(spec, opts));
}

/// Runs `kernel_name` at the weak-scaling point `bytes_per_lane` on `cfg`
/// and returns the stats (verifying the result unless `verify` is false).
inline RunStats run_kernel(const MachineConfig& cfg, std::string_view kernel_name,
                           std::uint64_t bytes_per_lane, bool verify = true) {
  driver::Job job;
  job.config_label = cfg.name();
  job.cfg = cfg;
  job.kernel = std::string(kernel_name);
  job.bytes_per_lane = bytes_per_lane;
  driver::RunnerOptions opts;
  opts.verify = verify;
  const driver::JobResult res = driver::run_job(job, opts);
  check(res.ok, "kernel run failed inside bench harness: " + res.error);
  return res.stats;
}

/// True when the bench was invoked with the given flag.
inline bool has_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

inline void print_header(std::string_view title, std::string_view paper_ref) {
  std::printf("==== %s ====\n", std::string(title).c_str());
  std::printf("reproduces: %s\n\n", std::string(paper_ref).c_str());
}

}  // namespace araxl::bench

#endif  // ARAXL_BENCH_BENCH_UTIL_HPP
