// Table I — benchmark parameters and analytic peak performance, plus the
// measured DP-FLOP/cycle of each kernel on the 64-lane AraXL in the
// long-vector regime as a cross-check of the peak accounting.
#include <cstdio>

#include "bench_util.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"

using namespace araxl;

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header("Table I: benchmark parameters",
                      "paper Table I — problem sizes, LMUL, max perf "
                      "[DP-FLOP/cycle] (and measured on 64L AraXL)");

  const MachineConfig cfg = MachineConfig::araxl(quick ? 16 : 64);
  const std::uint64_t bpl = 512;
  const double lc = cfg.total_lanes();

  struct Row {
    const char* kernel;
    const char* problem;
    const char* paper_peak;  // Table I formula
  };
  const Row rows[] = {
      {"fmatmul", "A=64x256 B=256xN", "2 x LC"},
      {"fconv2d", "A=256xN f=7x7", "2 x LC"},
      {"jacobi2d", "A=256xN", "LC"},
      {"fdotproduct", "A=B=N", "LC"},
      {"exp", "A=N", "28/21 x LC (ours: 30/20)"},
      {"softmax", "A=64xN", "32/25 x LC (ours: 34/24)"},
  };

  TextTable table({"kernel", "problem size", "LMUL", "paper max perf",
                   "model peak [FLOP/c]", "measured [FLOP/c]", "measured util"});
  for (std::size_t c = 2; c < 7; ++c) table.align_right(c);

  for (const Row& r : rows) {
    auto kernel = make_kernel(r.kernel);
    const unsigned g = kernel->lmul(bpl).group_regs();
    const RunStats stats = bench::run_kernel(cfg, r.kernel, bpl);
    table.add_row({r.kernel, r.problem, std::to_string(g), r.paper_peak,
                   fmt_f(kernel->max_perf_factor() * lc, 1),
                   fmt_f(stats.flop_per_cycle(), 1), fmt_pct(stats.fpu_util(), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nN = n x L x C with n = 16 x LMUL at 128 x LMUL B/lane "
              "(here: %llu B/lane on %s).\n",
              static_cast<unsigned long long>(bpl), cfg.name().c_str());
  return 0;
}
