// Figure 8 — hierarchical floorplan of the 16-lane AraXL.
//
// The paper shows the annotated P&R floorplan (4-lane clusters around
// CVA6 and the top-level interfaces). We regenerate the hierarchical
// layout from the calibrated area model with a slicing floorplanner and
// render it as ASCII; block areas are exact, the topology is the
// slicing-tree approximation of the published plan.
#include <cstdio>

#include "bench_util.hpp"
#include "common/fmt.hpp"
#include "ppa/floorplan.hpp"

using namespace araxl;

int main(int argc, char** argv) {
  const unsigned lanes = bench::has_flag(argc, argv, "--64l") ? 64 : 16;
  bench::print_header("Figure 8: AraXL floorplan",
                      "paper Fig. 8 — 16-lane AraXL hierarchical floorplan");

  const MachineConfig cfg = MachineConfig::araxl(lanes);
  const Floorplan fp = machine_floorplan(cfg);

  std::printf("%s: die %.2f x %.2f mm (%.2f mm2 at 80%% utilization)\n\n",
              cfg.name().c_str(), fp.die_w, fp.die_h, fp.die_w * fp.die_h);
  std::printf("%s\n", fp.render(76).c_str());

  std::printf("%-10s %10s %10s %12s\n", "block", "x,y [mm]", "w x h [mm]",
              "area [mm2]");
  for (const PlacedBlock& b : fp.blocks) {
    std::printf("%-10s %4.2f,%4.2f  %4.2f x %4.2f %10.3f\n", b.name.c_str(),
                b.x, b.y, b.w, b.h, b.area());
  }
  return 0;
}
