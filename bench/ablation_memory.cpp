// Ablation: memory-latency tolerance of long vectors.
//
// The paper's scalability argument rests on long-vector workloads
// tolerating interconnect/memory latency ("we prioritize relaxing the
// timing of all top-level interconnects over their latency"). This
// ablation sweeps the L2 latency far beyond the +8 cycles of Fig. 7a and
// reports the utilization surface per kernel, at both a medium and a long
// vector length.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"

using namespace araxl;

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header("Ablation: L2 latency tolerance vs vector length",
                      "design-choice study (DESIGN.md); extends paper Fig. 7a");

  const std::vector<unsigned> latencies =
      quick ? std::vector<unsigned>{12, 96} : std::vector<unsigned>{12, 24, 48, 96};

  driver::SweepSpec spec;
  for (const unsigned lat : latencies) {
    MachineConfig cfg = MachineConfig::araxl(64);
    cfg.l2_latency = lat;
    spec.configs.push_back({"L2=" + std::to_string(lat), cfg});
  }
  spec.kernels = {"fmatmul", "fdotproduct", "stream_triad"};
  spec.bytes_per_lane = {128, 512};
  const bench::SweepResults results = bench::run_sweep(spec);

  for (const std::uint64_t bpl : spec.bytes_per_lane) {
    TextTable table({"kernel", "L2=12", "L2=24", "L2=48", "L2=96"});
    for (std::size_t c = 1; c < 5; ++c) table.align_right(c);
    for (const std::string& kname : spec.kernels) {
      std::vector<std::string> row{kname};
      for (const unsigned lat : {12u, 24u, 48u, 96u}) {
        if (std::find(latencies.begin(), latencies.end(), lat) == latencies.end()) {
          row.push_back("-");
          continue;
        }
        const RunStats& s =
            results.stats("L2=" + std::to_string(lat), kname, bpl);
        row.push_back(fmt_pct(s.fpu_util(), 1));
      }
      table.add_row(std::move(row));
    }
    std::printf("--- FPU utilization at %llu B/lane ---\n%s\n",
                static_cast<unsigned long long>(bpl), table.render().c_str());
  }
  std::printf("expected shape: the 512 B/lane column degrades far less than "
              "128 B/lane — longer vectors hide more memory latency.\n");
  return 0;
}
