// Ablation: the value of long vector registers.
//
// The paper's central design premise is that a larger VRF (up to the RVV
// ceiling of 64 Kibit/register) buys latency tolerance and lower issue
// pressure. This ablation fixes the 64-lane AraXL datapath and the problem
// size, and sweeps only VLEN: shorter registers force more strip-mining
// iterations and more vector-instruction setups for the same work.
#include <cstdio>

#include "bench_util.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"

using namespace araxl;

int main(int, char**) {
  bench::print_header("Ablation: VLEN (register length) at fixed datapath",
                      "design-choice study (DESIGN.md); extends paper SIV-B");

  const std::vector<std::uint64_t> vlens = {65536, 32768, 16384, 8192, 4096};

  driver::SweepSpec spec;
  for (const std::uint64_t vlen : vlens) {
    MachineConfig cfg = MachineConfig::araxl(64);
    cfg.vlen_bits = vlen;
    cfg.validate();
    spec.configs.push_back({"vlen=" + std::to_string(vlen), cfg});
  }
  spec.kernels = {"fmatmul", "fdotproduct"};
  // Fixed problem: the paper's 512 B/lane point, independent of VLEN.
  spec.bytes_per_lane = {512};
  const bench::SweepResults results = bench::run_sweep(spec);

  for (const std::string& kname : spec.kernels) {
    TextTable table({"VLEN [bits]", "bits/lane", "cycles", "FPU util",
                     "vs 64Kibit"});
    for (std::size_t c = 0; c < 5; ++c) table.align_right(c);

    const Cycle best =
        results.stats("vlen=65536", kname, 512).cycles;
    for (const std::uint64_t vlen : vlens) {
      const RunStats& s =
          results.stats("vlen=" + std::to_string(vlen), kname, 512);
      table.add_row({std::to_string(vlen), std::to_string(vlen / 64),
                     fmt_group(s.cycles), fmt_pct(s.fpu_util(), 1),
                     fmt_f(static_cast<double>(s.cycles) / best, 2) + "x"});
    }
    std::printf("--- %s (64L AraXL, fixed problem size) ---\n%s\n",
                kname.c_str(), table.render().c_str());
  }
  std::printf("expected shape: cycles grow and utilization falls as VLEN "
              "shrinks — the motivation for reaching the RVV 64 Kibit "
              "ceiling.\n");
  return 0;
}
