// Ablation: the value of long vector registers.
//
// The paper's central design premise is that a larger VRF (up to the RVV
// ceiling of 64 Kibit/register) buys latency tolerance and lower issue
// pressure. This ablation fixes the 64-lane AraXL datapath and the problem
// size, and sweeps only VLEN: shorter registers force more strip-mining
// iterations and more vector-instruction setups for the same work.
#include <cstdio>

#include "bench_util.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"

using namespace araxl;

int main(int, char**) {
  bench::print_header("Ablation: VLEN (register length) at fixed datapath",
                      "design-choice study (DESIGN.md); extends paper SIV-B");

  for (const char* kname : {"fmatmul", "fdotproduct"}) {
    TextTable table({"VLEN [bits]", "bits/lane", "cycles", "FPU util",
                     "vs 64Kibit"});
    for (std::size_t c = 0; c < 5; ++c) table.align_right(c);

    Cycle best = 0;
    for (const std::uint64_t vlen : {65536ull, 32768ull, 16384ull, 8192ull, 4096ull}) {
      MachineConfig cfg = MachineConfig::araxl(64);
      cfg.vlen_bits = vlen;
      cfg.validate();
      // Fixed problem: the paper's 512 B/lane point, independent of VLEN.
      const RunStats s = bench::run_kernel(cfg, kname, 512);
      if (vlen == 65536) best = s.cycles;
      table.add_row({std::to_string(vlen), std::to_string(vlen / 64),
                     fmt_group(s.cycles), fmt_pct(s.fpu_util(), 1),
                     fmt_f(static_cast<double>(s.cycles) / best, 2) + "x"});
    }
    std::printf("--- %s (64L AraXL, fixed problem size) ---\n%s\n", kname,
                table.render().c_str());
  }
  std::printf("expected shape: cycles grow and utilization falls as VLEN "
              "shrinks — the motivation for reaching the RVV 64 Kibit "
              "ceiling.\n");
  return 0;
}
