// Figure 6 — AraXL performance scalability under weak scaling.
//
// For each Table-I kernel and each B/lane in {64, 128, 256, 512}, runs
// {8L, 16L} Ara2 and {8, 16, 32, 64}-lane AraXL at proportionally larger
// problem sizes and prints:
//   * the performance scaling factor normalized to the original 8-lane
//     Ara2 (the paper's bar plot, left Y axis), and
//   * the absolute FPU utilization of 8L Ara2 and 64L AraXL (the line
//     plot, right Y axis).
// Also reproduces the §IV-B text experiment: fdotproduct at 16384 B/lane
// strip-mined over 16 iterations (paper: 7.6x at 64 lanes).
//
// The whole grid is declared as one driver sweep and executed by the
// worker pool; the tables below are pure formatting over the result set.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"

using namespace araxl;

namespace {

std::vector<driver::ConfigPoint> fig6_configs() {
  return {
      {"8L-Ara2", MachineConfig::ara2(8)},
      {"8L-AraXL", MachineConfig::araxl(8)},
      {"16L-Ara2", MachineConfig::ara2(16)},
      {"16L-AraXL", MachineConfig::araxl(16)},
      {"32L-AraXL", MachineConfig::araxl(32)},
      {"64L-AraXL", MachineConfig::araxl(64)},
  };
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header("Figure 6: performance scalability (weak scaling)",
                      "paper Fig. 6 — bars normalized to 8L Ara2; lines are "
                      "FPU utilization of 8L Ara2 and 64L AraXL");

  driver::SweepSpec spec;
  spec.configs = fig6_configs();
  spec.kernels = {"fmatmul", "fconv2d", "jacobi2d", "fdotproduct", "exp",
                  "softmax"};
  spec.bytes_per_lane = quick ? std::vector<std::uint64_t>{64, 512}
                              : std::vector<std::uint64_t>{64, 128, 256, 512};
  const bench::SweepResults results = bench::run_sweep(spec);

  for (const std::string& kname : spec.kernels) {
    TextTable table({"B/lane", "8L-Ara2", "8L-AraXL", "16L-Ara2", "16L-AraXL",
                     "32L-AraXL", "64L-AraXL", "util 8L-Ara2", "util 64L-AraXL"});
    for (std::size_t c = 0; c < 9; ++c) table.align_right(c);

    for (const std::uint64_t bpl : spec.bytes_per_lane) {
      const double base_fpc =
          results.stats("8L-Ara2", kname, bpl).flop_per_cycle();
      std::vector<std::string> row{std::to_string(bpl)};
      for (const driver::ConfigPoint& c : spec.configs) {
        const double fpc =
            results.stats(c.label, kname, bpl).flop_per_cycle();
        row.push_back(fmt_f(fpc / base_fpc, 2) + "x");
      }
      row.push_back(fmt_pct(results.stats("8L-Ara2", kname, bpl).fpu_util(), 1));
      row.push_back(
          fmt_pct(results.stats("64L-AraXL", kname, bpl).fpu_util(), 1));
      table.add_row(std::move(row));
    }
    std::printf("--- %s (scaling factor vs 8L-Ara2) ---\n%s\n", kname.c_str(),
                table.render().c_str());
  }

  // §IV-B long-vector dot product: 16384 B/lane, strip-mined over 16
  // vsetvli iterations at 64 lanes (paper: scaling recovers to 7.6x).
  if (!quick) {
    driver::SweepSpec lv;
    lv.configs = {{"8L-Ara2", MachineConfig::ara2(8)},
                  {"64L-AraXL", MachineConfig::araxl(64)}};
    lv.kernels = {"fdotproduct"};
    lv.bytes_per_lane = {16384};
    const bench::SweepResults lv_results = bench::run_sweep(lv);
    const RunStats& base = lv_results.stats("8L-Ara2", "fdotproduct", 16384);
    const RunStats& big = lv_results.stats("64L-AraXL", "fdotproduct", 16384);
    std::printf("--- fdotproduct long-vector regime (16384 B/lane) ---\n");
    std::printf("64L-AraXL scaling vs 8L-Ara2: %.2fx (paper: 7.6x)\n",
                big.flop_per_cycle() / base.flop_per_cycle());
    std::printf("64L-AraXL FPU utilization:    %s\n\n",
                fmt_pct(big.fpu_util(), 1).c_str());
  }
  return 0;
}
