// Ablation: cluster shape at a fixed 64-lane machine.
//
// The paper chooses the 4-lane Ara2 cluster as AraXL's building block
// because it is the most energy-efficient Ara2 configuration (§III-A).
// This ablation holds the total datapath at 64 lanes and varies the split:
// 32 clusters x 2 lanes, 16 x 4 (the paper), 8 x 8. Fewer, fatter clusters
// shorten the ring (faster reductions) but grow the per-cluster A2A units
// the design is trying to avoid; more, thinner clusters do the opposite.
// The timing model captures the ring-length effects; the area argument for
// 4-lane clusters comes from the Ara2 paper's efficiency data.
#include <cstdio>

#include "bench_util.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"

using namespace araxl;

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header("Ablation: cluster shape (clusters x lanes) at 64 lanes",
                      "design-choice study (DESIGN.md); paper fixes 4-lane "
                      "clusters");

  const char* kernels[] = {"fmatmul", "fdotproduct", "softmax", "fconv2d"};
  const std::uint64_t bpl = quick ? 128 : 512;

  TextTable table({"kernel", "32c x 2L", "16c x 4L (paper)", "8c x 8L"});
  table.align_right(1);
  table.align_right(2);
  table.align_right(3);
  for (const char* kname : kernels) {
    std::vector<std::string> row{kname};
    for (const auto& [clusters, lanes] :
         {std::pair{32u, 2u}, std::pair{16u, 4u}, std::pair{8u, 8u}}) {
      const MachineConfig cfg = MachineConfig::araxl_shaped(clusters, lanes);
      const RunStats s = bench::run_kernel(cfg, kname, bpl);
      row.push_back(fmt_f(s.flop_per_cycle(), 1) + " F/c, " +
                    fmt_pct(s.fpu_util(), 0));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: compute-bound kernels are shape-insensitive; "
              "reduction kernels (fdotproduct, softmax) prefer fewer, fatter "
              "clusters because the ring log-tree shortens.\n");
  return 0;
}
