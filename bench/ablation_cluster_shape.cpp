// Ablation: cluster shape at a fixed 64-lane machine.
//
// The paper chooses the 4-lane Ara2 cluster as AraXL's building block
// because it is the most energy-efficient Ara2 configuration (§III-A).
// This ablation holds the total datapath at 64 lanes and varies the split:
// 32 clusters x 2 lanes (expressed hierarchically as 2 groups x 16 — a
// single flat ring caps at the paper's 16 stops), 16 x 4 (the paper),
// 8 x 8. Fewer, fatter clusters shorten the ring (faster reductions) but
// grow the per-cluster A2A units the design is trying to avoid; more,
// thinner clusters do the opposite.
// The timing model captures the ring-length effects; the area argument for
// 4-lane clusters comes from the Ara2 paper's efficiency data.
#include <cstdio>

#include "bench_util.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"

using namespace araxl;

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header("Ablation: cluster shape (clusters x lanes) at 64 lanes",
                      "design-choice study (DESIGN.md); paper fixes 4-lane "
                      "clusters");

  const std::uint64_t bpl = quick ? 128 : 512;

  driver::SweepSpec spec;
  spec.configs = {
      {"2g x 16c x 2L", MachineConfig::araxl_hier(2, 16, 2)},
      {"16c x 4L (paper)", MachineConfig::araxl_shaped(16, 4)},
      {"8c x 8L", MachineConfig::araxl_shaped(8, 8)},
  };
  spec.kernels = {"fmatmul", "fdotproduct", "softmax", "fconv2d"};
  spec.bytes_per_lane = {bpl};
  const bench::SweepResults results = bench::run_sweep(spec);

  TextTable table({"kernel", "2g x 16c x 2L", "16c x 4L (paper)", "8c x 8L"});
  table.align_right(1);
  table.align_right(2);
  table.align_right(3);
  for (const std::string& kname : spec.kernels) {
    std::vector<std::string> row{kname};
    for (const driver::ConfigPoint& c : spec.configs) {
      const RunStats& s = results.stats(c.label, kname, bpl);
      row.push_back(fmt_f(s.flop_per_cycle(), 1) + " F/c, " +
                    fmt_pct(s.fpu_util(), 0));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: compute-bound kernels are shape-insensitive; "
              "reduction kernels (fdotproduct, softmax) prefer fewer, fatter "
              "clusters because the ring log-tree shortens.\n");
  return 0;
}
