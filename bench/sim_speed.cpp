// google-benchmark microbenchmarks of the simulator itself: how fast each
// engine retires simulated cycles and instructions. Not a paper figure — a
// development aid for keeping the reproduction usable, and the measurement
// behind the event-driven engine's speedup claims (see README.md).
//
// BM_AxpyCycles runs the default (event-driven) engine; the *Oracle
// variants pin the cycle-stepped reference so the sim_cycles/s counters of
// the two can be compared directly.
//
// `bench_sim_speed --emit-json <path>` skips google-benchmark and writes
// the sim-speed trajectory file instead: sim_cycles/s for a fixed kernel x
// B/lane grid under both engines, stamped with the build's git revision.
// CI regenerates it on every push, uploads it as an artifact, and
// tools/diff_sim_speed.py gates the event/oracle speedup ratios against
// the committed baseline (BENCH_sim_speed.json) with a +-20% tolerance —
// ratios, because absolute rates track the host, while the ratio tracks
// the engine.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "kernels/common.hpp"
#include "machine/machine.hpp"
#include "obs/metrics.hpp"
#include "store/version.hpp"

namespace araxl {
namespace {

Program build_axpy(const MachineConfig& cfg, std::uint64_t n) {
  MemLayout layout;
  const std::uint64_t x_addr = layout.alloc(n * 8);
  const std::uint64_t y_addr = layout.alloc(n * 8);
  ProgramBuilder pb(cfg.effective_vlen(), "axpy");
  std::uint64_t done = 0;
  while (done < n) {
    const std::uint64_t vl = pb.vsetvli(n - done, Sew::k64, kLmul4);
    pb.vle(8, x_addr + done * 8);
    pb.vle(16, y_addr + done * 8);
    pb.vfmacc_vf(16, 1.5, 8);
    pb.vse(16, y_addr + done * 8);
    done += vl;
  }
  return pb.take();
}

void axpy_cycles(benchmark::State& state, TimingMode mode) {
  MachineConfig cfg = MachineConfig::araxl(static_cast<unsigned>(state.range(0)));
  cfg.timing_mode = mode;
  Machine m(cfg);
  const Program prog = build_axpy(cfg, 16384);

  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const RunStats stats = m.run(prog);
    cycles += stats.cycles;
    benchmark::DoNotOptimize(stats.cycles);
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void BM_AxpyCycles(benchmark::State& state) {
  axpy_cycles(state, TimingMode::kEventDriven);
}
BENCHMARK(BM_AxpyCycles)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_AxpyCyclesOracle(benchmark::State& state) {
  axpy_cycles(state, TimingMode::kCycleStepped);
}
BENCHMARK(BM_AxpyCyclesOracle)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_KernelBuild(benchmark::State& state) {
  const MachineConfig cfg = MachineConfig::araxl(16);
  for (auto _ : state) {
    Machine m(cfg);
    auto kernel = make_kernel("fmatmul");
    const Program prog = kernel->build(m, 128);
    benchmark::DoNotOptimize(prog.ops.size());
  }
}
BENCHMARK(BM_KernelBuild)->Unit(benchmark::kMillisecond);

void fmatmul_sim(benchmark::State& state, TimingMode mode) {
  MachineConfig cfg = MachineConfig::araxl(16);
  cfg.timing_mode = mode;
  Machine m(cfg);
  auto kernel = make_kernel("fmatmul");
  const Program prog = kernel->build(m, 64);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const RunStats stats = m.run(prog);
    cycles += stats.cycles;
    benchmark::DoNotOptimize(stats.cycles);
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void BM_FmatmulSim(benchmark::State& state) {
  fmatmul_sim(state, TimingMode::kEventDriven);
}
BENCHMARK(BM_FmatmulSim)->Unit(benchmark::kMillisecond);

void BM_FmatmulSimOracle(benchmark::State& state) {
  fmatmul_sim(state, TimingMode::kCycleStepped);
}
BENCHMARK(BM_FmatmulSimOracle)->Unit(benchmark::kMillisecond);

// ---- sim-speed trajectory (--emit-json) -------------------------------------

/// Simulated cycles per wall second for `prog` on a fresh run of `m`.
/// Best-of-windows, not one long average: the hosts this runs on (CI
/// runners, shared containers) suffer multi-x interference spikes, and
/// interference only ever slows a run down — so the fastest of several
/// short windows is the estimate closest to the machine's true rate, and
/// the one that keeps the event/oracle ratio stable across regenerations.
double measure_cycles_per_s(Machine& m, const Program& prog,
                            obs::MetricsRegistry* metrics = nullptr) {
  // One warmup run (page faults, allocator steady state).
  m.run(prog, nullptr, nullptr, metrics);
  double best = 0.0;
  for (int w = 0; w < 5; ++w) {
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t total = 0;
    double elapsed = 0.0;
    do {
      total += m.run(prog, nullptr, nullptr, metrics).cycles;
      elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    } while (elapsed < 0.12);
    best = std::max(best, static_cast<double>(total) / elapsed);
  }
  return best;
}

/// Cost of carrying a live metrics registry, as (rate without) / (rate
/// with) on the event-driven AXPY point — 1.0 means free, 1.10 means
/// attaching metrics costs 10%. The metrics-off path itself is gated
/// implicitly: its null-pointer checks are part of every other entry's
/// event_sim_cycles_per_s, so a regression there moves the speedup ratios
/// this file already gates.
double measure_metrics_overhead_ratio() {
  MachineConfig cfg = MachineConfig::araxl(8);
  Machine m(cfg);
  const Program prog = build_axpy(cfg, 16384);
  const double off = measure_cycles_per_s(m, prog);
  obs::MetricsRegistry metrics;
  const double on = measure_cycles_per_s(m, prog, &metrics);
  return off / on;
}

struct TrajectoryEntry {
  std::string name;
  unsigned lanes;
  std::uint64_t bpl;
  double event_cycles_per_s;
  double oracle_cycles_per_s;
  std::uint64_t batched_iterations;
  double stall_frac;  ///< attributed stall slots / slot universe
};

/// Measures one trajectory point under both engines. `bpl == 0` selects
/// the hand-built AXPY program; otherwise `name` is a registry kernel
/// built at that B/lane.
TrajectoryEntry measure_entry(const char* name, unsigned lanes,
                              std::uint64_t bpl) {
  TrajectoryEntry e;
  e.name = name;
  e.lanes = lanes;
  e.bpl = bpl;
  for (const TimingMode mode :
       {TimingMode::kEventDriven, TimingMode::kCycleStepped}) {
    MachineConfig cfg = MachineConfig::araxl(lanes);
    cfg.timing_mode = mode;
    Machine m(cfg);
    Program prog;
    if (bpl == 0) {
      prog = build_axpy(cfg, 16384);
    } else {
      auto k = make_kernel(name);
      prog = k->build(m, bpl);
    }
    const double rate = measure_cycles_per_s(m, prog);
    if (mode == TimingMode::kEventDriven) {
      e.event_cycles_per_s = rate;
      const RunStats s = m.run(prog);
      e.batched_iterations = s.batched_iterations;
      // Unlike the rates, the stall attribution is a pure simulation
      // invariant — deterministic and host-independent — so the committed
      // trajectory can gate it exactly.
      std::uint64_t stalls = 0;
      for (const std::uint64_t v : s.stall_cycles) stalls += v;
      e.stall_frac = static_cast<double>(stalls) /
                     static_cast<double>(s.cycles * s.total_lanes * 8);
    } else {
      e.oracle_cycles_per_s = rate;
    }
  }
  return e;
}

int emit_trajectory(const char* path) {
  std::vector<TrajectoryEntry> entries;
  entries.push_back(measure_entry("axpy", 8, 0));
  // Registry axpy at a long AVL: 64-lane batching only engages once the
  // run is deep enough for warmup projection, which the hand-built bpl=0
  // program (16384 elements = 2 strips at 64 lanes) never reaches. Deep
  // enough (bpl=16384 is 128 strips) that the batched steady state, not
  // the warmup, dominates the measured rate.
  entries.push_back(measure_entry("axpy", 64, 16384));
  entries.push_back(measure_entry("fdotproduct", 8, 16384));
  entries.push_back(measure_entry("stream_triad", 8, 32768));
  entries.push_back(measure_entry("jacobi2d", 16, 256));
  entries.push_back(measure_entry("jacobi2d", 64, 256));
  entries.push_back(measure_entry("fmatmul", 16, 64));

  std::string out = "{\n";
  out += "  \"revision\": \"" + std::string(store::git_revision()) + "\",\n";
  out += "  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const TrajectoryEntry& e = entries[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"lanes\": %u, \"bpl\": %llu, "
                  "\"event_sim_cycles_per_s\": %.0f, "
                  "\"oracle_sim_cycles_per_s\": %.0f, "
                  "\"speedup\": %.3f, \"batched_iterations\": %llu, "
                  "\"stall_frac\": %.6f}%s\n",
                  e.name.c_str(), e.lanes,
                  static_cast<unsigned long long>(e.bpl), e.event_cycles_per_s,
                  e.oracle_cycles_per_s,
                  e.event_cycles_per_s / e.oracle_cycles_per_s,
                  static_cast<unsigned long long>(e.batched_iterations),
                  e.stall_frac, i + 1 == entries.size() ? "" : ",");
    out += buf;
  }
  out += "  ],\n";
  char ratio_buf[64];
  std::snprintf(ratio_buf, sizeof ratio_buf,
                "  \"metrics_overhead_ratio\": %.3f\n",
                measure_metrics_overhead_ratio());
  out += ratio_buf;
  out += "}\n";
  std::ofstream f(path, std::ios::binary);
  if (!f.good()) return 1;
  f.write(out.data(), static_cast<std::streamsize>(out.size()));
  return f.good() ? 0 : 1;
}

}  // namespace
}  // namespace araxl

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--emit-json") == 0) {
      return araxl::emit_trajectory(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
