// google-benchmark microbenchmarks of the simulator itself: how fast each
// engine retires simulated cycles and instructions. Not a paper figure — a
// development aid for keeping the reproduction usable, and the measurement
// behind the event-driven engine's speedup claims (see README.md).
//
// BM_AxpyCycles runs the default (event-driven) engine; the *Oracle
// variants pin the cycle-stepped reference so the sim_cycles/s counters of
// the two can be compared directly.
#include <benchmark/benchmark.h>

#include "kernels/common.hpp"
#include "machine/machine.hpp"

namespace araxl {
namespace {

Program build_axpy(const MachineConfig& cfg, std::uint64_t n) {
  MemLayout layout;
  const std::uint64_t x_addr = layout.alloc(n * 8);
  const std::uint64_t y_addr = layout.alloc(n * 8);
  ProgramBuilder pb(cfg.effective_vlen(), "axpy");
  std::uint64_t done = 0;
  while (done < n) {
    const std::uint64_t vl = pb.vsetvli(n - done, Sew::k64, kLmul4);
    pb.vle(8, x_addr + done * 8);
    pb.vle(16, y_addr + done * 8);
    pb.vfmacc_vf(16, 1.5, 8);
    pb.vse(16, y_addr + done * 8);
    done += vl;
  }
  return pb.take();
}

void axpy_cycles(benchmark::State& state, TimingMode mode) {
  MachineConfig cfg = MachineConfig::araxl(static_cast<unsigned>(state.range(0)));
  cfg.timing_mode = mode;
  Machine m(cfg);
  const Program prog = build_axpy(cfg, 16384);

  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const RunStats stats = m.run(prog);
    cycles += stats.cycles;
    benchmark::DoNotOptimize(stats.cycles);
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void BM_AxpyCycles(benchmark::State& state) {
  axpy_cycles(state, TimingMode::kEventDriven);
}
BENCHMARK(BM_AxpyCycles)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_AxpyCyclesOracle(benchmark::State& state) {
  axpy_cycles(state, TimingMode::kCycleStepped);
}
BENCHMARK(BM_AxpyCyclesOracle)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_KernelBuild(benchmark::State& state) {
  const MachineConfig cfg = MachineConfig::araxl(16);
  for (auto _ : state) {
    Machine m(cfg);
    auto kernel = make_kernel("fmatmul");
    const Program prog = kernel->build(m, 128);
    benchmark::DoNotOptimize(prog.ops.size());
  }
}
BENCHMARK(BM_KernelBuild)->Unit(benchmark::kMillisecond);

void fmatmul_sim(benchmark::State& state, TimingMode mode) {
  MachineConfig cfg = MachineConfig::araxl(16);
  cfg.timing_mode = mode;
  Machine m(cfg);
  auto kernel = make_kernel("fmatmul");
  const Program prog = kernel->build(m, 64);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const RunStats stats = m.run(prog);
    cycles += stats.cycles;
    benchmark::DoNotOptimize(stats.cycles);
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void BM_FmatmulSim(benchmark::State& state) {
  fmatmul_sim(state, TimingMode::kEventDriven);
}
BENCHMARK(BM_FmatmulSim)->Unit(benchmark::kMillisecond);

void BM_FmatmulSimOracle(benchmark::State& state) {
  fmatmul_sim(state, TimingMode::kCycleStepped);
}
BENCHMARK(BM_FmatmulSimOracle)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace araxl

BENCHMARK_MAIN();
