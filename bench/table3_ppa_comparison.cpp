// Table III — PPA comparison against state-of-the-art laned vector
// processors: max frequency, peak fmatmul performance (measured by the
// cycle-level simulator at 512 B/lane), energy efficiency and area
// efficiency, for Vitruvius+ (paper row), 16L Ara2, and 16/32/64L AraXL.
#include <cstdio>

#include "bench_util.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"
#include "ppa/area_model.hpp"
#include "ppa/freq_model.hpp"
#include "ppa/power_model.hpp"
#include "ppa/soa.hpp"

using namespace araxl;

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header("Table III: PPA comparison vs SoA laned vector processors",
                      "paper Table III — fmatmul @ 512 B/lane, 22 nm, "
                      "TT/0.8V/25C");

  const AreaModel area;
  const FreqModel freq;
  const PowerModel power;

  TextTable table({"design", "L", "freq [GHz]", "max perf [GFLOPs]",
                   "energy eff [GFLOPS/W]", "area eff [GFLOPS/mm2]"});
  for (std::size_t c = 1; c < 6; ++c) table.align_right(c);

  // External row: Vitruvius+ (from the paper; no microarchitecture model).
  const SoaPpaRow vit = vitruvius_row();
  table.add_row({vit.name + " *", std::to_string(vit.lanes), fmt_f(vit.freq_ghz, 2),
                 fmt_f(vit.max_perf_gflops, 1), fmt_f(vit.energy_eff_gflops_w, 1),
                 fmt_f(vit.area_eff_gflops_mm2, 2)});

  struct Cfg {
    MachineConfig cfg;
  };
  std::vector<MachineConfig> cfgs = {MachineConfig::ara2(16),
                                     MachineConfig::araxl(16),
                                     MachineConfig::araxl(32)};
  if (!quick) cfgs.push_back(MachineConfig::araxl(64));

  for (const MachineConfig& cfg : cfgs) {
    const RunStats stats = bench::run_kernel(cfg, "fmatmul", 512);
    const double f = freq.freq_ghz(cfg);
    const double gflops = stats.gflops(f);
    const double mm2 = area.total_mm2(cfg);
    const double eff_w = power.gflops_per_w(cfg, f, stats.flop_per_cycle(),
                                            stats.fpu_util());
    table.add_row({cfg.name(), std::to_string(cfg.total_lanes()), fmt_f(f, 2),
                   fmt_f(gflops, 1), fmt_f(eff_w, 1), fmt_f(gflops / mm2, 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n* Vitruvius+ row from the paper (scalar core and caches not "
              "included in its efficiency metrics).\n");
  std::printf("paper: Ara2 1.08GHz/34.2/30.3/11.6; AraXL16 1.40/44.3/39.6/17.4; "
              "AraXL32 1.40/87.2/40.4/17.8; AraXL64 1.15/146.0/40.1/15.1\n");
  std::printf("SIV-E check: 64L AraXL vs older NEC VE vector unit area eff "
              "(%.2f GFLOPS/mm2): paper claims >= +45%%\n",
              nec_ve_area_eff_gflops_mm2());
  return 0;
}
