// Figure 1 — vector processors grouped by vector register width (VLEN)
// and FPUs per instruction, rendered as an ASCII scatter over the same
// log-log axes as the paper.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/bits.hpp"
#include "common/table.hpp"
#include "ppa/soa.hpp"

using namespace araxl;

int main(int, char**) {
  bench::print_header("Figure 1: SoA landscape (VLEN vs FPUs)",
                      "paper Fig. 1 — vector processors by VLEN and FPUs "
                      "per instruction");

  std::vector<SoaProcessor> procs = fig1_landscape();

  TextTable table({"processor", "VLEN [bits]", "lanes (FPUs/instr)", "ISA"});
  table.align_right(1);
  table.align_right(2);
  std::stable_sort(procs.begin(), procs.end(),
                   [](const SoaProcessor& a, const SoaProcessor& b) {
                     return a.vlen_bits * 64 + a.fpus < b.vlen_bits * 64 + b.fpus;
                   });
  for (const SoaProcessor& p : procs) {
    table.add_row({p.name, std::to_string(p.vlen_bits), std::to_string(p.fpus),
                   p.riscv ? "RISC-V" : "non-RISC-V"});
  }
  std::printf("%s\n", table.render().c_str());

  // Scatter: x = log2(VLEN) (64..65536 -> columns), y = log2(lanes).
  const unsigned x0 = 6, x1 = 16;  // log2 VLEN range
  const unsigned y1 = 6;           // log2 lanes max (64)
  std::vector<std::string> grid(y1 + 1, std::string((x1 - x0 + 1) * 6, ' '));
  for (const SoaProcessor& p : procs) {
    const unsigned x = (log2_floor(p.vlen_bits) - x0) * 6;
    const unsigned y = y1 - log2_floor(p.fpus);
    const char mark = p.riscv ? 'o' : 'x';
    if (grid[y][x] == ' ') {
      grid[y][x] = mark;
    } else {
      grid[y][x + 1] = mark;  // collision: nudge right
    }
  }
  std::printf("lanes\n");
  for (unsigned y = 0; y <= y1; ++y) {
    std::printf("%4u |%s\n", 1u << (y1 - y), grid[y].c_str());
  }
  std::printf("     +");
  for (unsigned x = x0; x <= x1; ++x) std::printf("------");
  std::printf("\n      ");
  for (unsigned x = x0; x <= x1; ++x) std::printf("%-6llu", 1ull << x);
  std::printf(" VLEN [bits]   (o = RISC-V, x = non-RISC-V)\n");
  return 0;
}
