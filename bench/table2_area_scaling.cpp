// Table II — AraXL area breakdown and scaling characterization (kGE) for
// 16-, 32- and 64-lane configurations, with the paper's published values
// for comparison and the scaling factor normalized to half the lane count.
#include <cstdio>

#include "bench_util.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"
#include "ppa/area_model.hpp"

using namespace araxl;

namespace {

struct PaperCol {
  unsigned lanes;
  double clusters, cva6, glsu, ringi, reqi, total;
};

constexpr PaperCol kPaper[] = {
    {16, 11354, 936, 291, 25, 34, 12641},
    {32, 22708, 901, 618, 44, 81, 24352},
    {64, 45415, 931, 1385, 76, 144, 47950},
};

}  // namespace

int main(int, char**) {
  bench::print_header("Table II: AraXL area breakdown and scaling",
                      "paper Table II — kGE per block at 16/32/64 lanes; "
                      "(x) = factor vs half the lane count");

  const AreaModel model;
  TextTable table({"block", "16L model", "16L paper", "32L model (x)",
                   "32L paper", "64L model (x)", "64L paper"});
  for (std::size_t c = 1; c < 7; ++c) table.align_right(c);

  const char* names[] = {"Clusters", "CVA6", "GLSU", "RINGI", "REQI", "TOTAL"};
  AreaBreakdown bd[3];
  double total[3];
  for (int i = 0; i < 3; ++i) {
    bd[i] = model.breakdown(MachineConfig::araxl(kPaper[i].lanes));
    total[i] = bd[i].total_kge();
  }
  for (const char* name : names) {
    const bool is_total = std::string_view(name) == "TOTAL";
    double v[3];
    double paper[3];
    for (int i = 0; i < 3; ++i) {
      v[i] = is_total ? total[i] : bd[i].block_kge(name);
      const PaperCol& p = kPaper[i];
      paper[i] = is_total                      ? p.total
                 : std::string_view(name) == "Clusters" ? p.clusters
                 : std::string_view(name) == "CVA6"     ? p.cva6
                 : std::string_view(name) == "GLSU"     ? p.glsu
                 : std::string_view(name) == "RINGI"    ? p.ringi
                                                        : p.reqi;
    }
    table.add_row({name, fmt_f(v[0], 0), fmt_f(paper[0], 0),
                   fmt_f(v[1], 0) + " (" + fmt_f(v[1] / v[0], 1) + "x)",
                   fmt_f(paper[1], 0),
                   fmt_f(v[2], 0) + " (" + fmt_f(v[2] / v[1], 1) + "x)",
                   fmt_f(paper[2], 0)});
  }
  std::printf("%s", table.render().c_str());

  const double ifc64 = bd[2].block_kge("GLSU") + bd[2].block_kge("RINGI") +
                       bd[2].block_kge("REQI");
  std::printf("\ninterfaces (GLSU+RINGI+REQI) at 64L: %s of total "
              "(paper: ~3%%)\n",
              fmt_pct(ifc64 / total[2], 1).c_str());
  std::printf("64L total vs 16L total: %.2fx (paper headline: 3.8x)\n",
              total[2] / total[0]);
  return 0;
}
