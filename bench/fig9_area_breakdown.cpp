// Figure 9 — area breakdown of the 16-lane AraXL vs the 16-lane Ara2.
//
// Per the figure's caption, AraXL's VLSU/SLDU/SEQ+DISP bars include the
// top-level GLSU/RINGI/REQI areas for a fair comparison. The paper's
// headline deltas: the A2A units (MASKU+SLDU+VLSU) shrink by 58% and the
// total by 14%.
#include <cstdio>

#include "bench_util.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"
#include "ppa/area_model.hpp"

using namespace araxl;

int main(int, char**) {
  bench::print_header("Figure 9: 16-lane area breakdown, Ara2 vs AraXL",
                      "paper Fig. 9 — cell area in kGE per block");

  const AreaModel model;
  const AreaBreakdown ara2 = model.breakdown(MachineConfig::ara2(16));
  const AreaBreakdown araxl = model.fig9_breakdown(MachineConfig::araxl(16));

  // Paper bars (kGE).
  struct PaperRow {
    const char* name;
    double ara2, araxl;
  };
  const PaperRow paper[] = {
      {"LANES", 10048, 10032}, {"MASKU", 1105, 328}, {"SLDU", 196, 425},
      {"VLSU", 1677, 507},     {"SEQ+DISP", 52, 134}, {"CVA6", 904, 936},
  };

  TextTable table({"block", "16L-Ara2 model", "paper", "16L-AraXL model",
                   "paper", "delta"});
  for (std::size_t c = 1; c < 6; ++c) table.align_right(c);
  for (const PaperRow& row : paper) {
    const double a2 = ara2.block_kge(row.name);
    const double ax = araxl.block_kge(row.name);
    table.add_row({row.name, fmt_f(a2, 0), fmt_f(row.ara2, 0), fmt_f(ax, 0),
                   fmt_f(row.araxl, 0), fmt_pct(ax / a2 - 1.0, 0)});
  }
  table.add_rule();
  const double t2 = ara2.total_kge();
  const double tx = araxl.total_kge();
  table.add_row({"TOTAL", fmt_f(t2, 0), "14773", fmt_f(tx, 0), "12641",
                 fmt_pct(tx / t2 - 1.0, 0)});
  std::printf("%s", table.render().c_str());

  const double a2a_ara2 = ara2.block_kge("MASKU") + ara2.block_kge("SLDU") +
                          ara2.block_kge("VLSU");
  const double a2a_araxl = araxl.block_kge("MASKU") + araxl.block_kge("SLDU") +
                           araxl.block_kge("VLSU");
  std::printf("\nA2A units (MASKU+SLDU+VLSU): Ara2 %s kGE -> AraXL %s kGE "
              "(%s; paper: -58%%)\n",
              fmt_f(a2a_ara2, 0).c_str(), fmt_f(a2a_araxl, 0).c_str(),
              fmt_pct(a2a_araxl / a2a_ara2 - 1.0, 0).c_str());
  std::printf("total: %s (paper: -14%%)\n",
              fmt_pct(tx / t2 - 1.0, 0).c_str());
  return 0;
}
