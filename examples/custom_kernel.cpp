// Writing your own kernel against the public API: a BLAS-1 Givens
// rotation (drot) — x' = c*x + s*y, y' = c*y - s*x — strip-mined with
// double-buffered register groups so loads, FMAs and stores of adjacent
// strips overlap. Demonstrates ProgramBuilder, memory layout, run
// statistics and verification end to end.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/fmt.hpp"
#include "kernels/common.hpp"
#include "machine/machine.hpp"

int main() {
  using namespace araxl;

  const MachineConfig cfg = MachineConfig::araxl(32);
  Machine m(cfg);
  const std::uint64_t n = 65536;
  const double c = std::cos(0.3);
  const double s = std::sin(0.3);

  const std::vector<double> x = random_doubles(n, -1.0, 1.0, 1);
  const std::vector<double> y = random_doubles(n, -1.0, 1.0, 2);
  MemLayout layout;
  const std::uint64_t x_addr = layout.alloc(n * 8);
  const std::uint64_t y_addr = layout.alloc(n * 8);
  m.mem().store_doubles(x_addr, x);
  m.mem().store_doubles(y_addr, y);

  // Register plan (LMUL=4 groups): the input buffers alternate between two
  // sets (v4/v8 and v12/v24) so strip i+1's loads don't WAR-stall on strip
  // i's still-reading FMAs; the result groups v16/v20 recycle once stored.
  ProgramBuilder pb(cfg.effective_vlen(), "drot");
  std::uint64_t done = 0;
  unsigned flip = 0;
  while (done < n) {
    const std::uint64_t vl = pb.vsetvli(n - done, Sew::k64, kLmul4);
    const unsigned xv = flip % 2 == 0 ? 4 : 12;
    const unsigned yv = flip % 2 == 0 ? 8 : 24;
    ++flip;
    pb.vle(xv, x_addr + done * 8);
    pb.vle(yv, y_addr + done * 8);
    pb.vfmul_vf(16, xv, c);        // x' = c*x
    pb.vfmacc_vf(16, s, yv);       // x' += s*y
    pb.vfmul_vf(20, yv, c);        // y' = c*y
    pb.vfnmsac_vf(20, s, xv);      // y' -= s*x
    pb.vse(16, x_addr + done * 8);
    pb.vse(20, y_addr + done * 8);
    pb.scalar_cycles(2);
    done += vl;
  }

  const RunStats stats = m.run(pb.take());

  const std::vector<double> gx = m.mem().load_doubles(x_addr, n);
  const std::vector<double> gy = m.mem().load_doubles(y_addr, n);
  double max_err = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const double ex = std::fma(s, y[i], c * x[i]);
    const double ey = std::fma(-s, x[i], c * y[i]);
    max_err = std::max({max_err, std::abs(gx[i] - ex), std::abs(gy[i] - ey)});
  }

  std::printf("drot over %llu elements on %s\n\n%s",
              static_cast<unsigned long long>(n), cfg.name().c_str(),
              stats.summary().c_str());
  std::printf("\nmax abs error: %.3g (%s)\n", max_err,
              max_err == 0.0 ? "exact" : "check");
  // Per element: 4 FPU slots (2 muls + 2 FMAs, 6 FLOP) vs 2 read beats —
  // compute-bound, so the FPU should stay mostly busy.
  std::printf("achieved %.2f DP-FLOP/cycle of a %u-lane peak\n",
              stats.flop_per_cycle(), 2 * cfg.total_lanes());
  return max_err == 0.0 ? 0 : 1;
}
