// LLM-scale softmax: a single attention row over a 128 Ki-element context
// window — the workload the paper cites ("context windows as large as 128k
// elements in Llama3") when motivating 64-Kibit vector registers.
//
// Runs a numerically stable single-row softmax, strip-mined over the
// 64-lane AraXL's 8192-element LMUL=8 register groups, verifies against a
// scalar reference, and reports throughput per attention row.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/fmt.hpp"
#include "kernels/common.hpp"
#include "kernels/exp_core.hpp"
#include "machine/machine.hpp"
#include "ppa/freq_model.hpp"

int main() {
  using namespace araxl;

  const MachineConfig cfg = MachineConfig::araxl(64);
  Machine m(cfg);
  const std::uint64_t n = 128 * 1024;  // context length

  const std::vector<double> logits = random_doubles(n, -10.0, 10.0, 0x11);
  MemLayout layout;
  const std::uint64_t x_addr = layout.alloc(n * 8);
  const std::uint64_t e_addr = layout.alloc(n * 8);
  const std::uint64_t y_addr = layout.alloc(n * 8);
  m.mem().store_doubles(x_addr, logits);

  ProgramBuilder pb(cfg.effective_vlen(), "softmax-128k");
  ExpRegs regs;
  regs.x = 6;

  // Pass 1: global max (strip-accumulated vfredmax).
  pb.vsetvli(n, Sew::k64, kLmul1);
  pb.vfmv_s_f(30, -std::numeric_limits<double>::infinity());
  for (std::uint64_t done = 0; done < n;) {
    const std::uint64_t vl = pb.vsetvli(n - done, Sew::k64, kLmul1);
    pb.vle(4, x_addr + done * 8);
    pb.vfredmax(30, 4, 30);
    pb.scalar_cycles(2);
    done += vl;
  }
  pb.vfmv_f_s(30);

  // Pass 2: exp(x - max) and global sum.
  pb.vsetvli(n, Sew::k64, kLmul1);
  pb.vfmv_s_f(31, 0.0);
  for (std::uint64_t done = 0; done < n;) {
    const std::uint64_t vl = pb.vsetvli(n - done, Sew::k64, kLmul1);
    pb.vle(4, x_addr + done * 8);
    pb.vfsub_vf_acc(regs.x, 4);
    emit_exp_core(pb, regs);
    pb.vse(regs.out, e_addr + done * 8);
    pb.vfredusum(31, regs.out, 31);
    pb.scalar_cycles(2);
    done += vl;
  }
  pb.vfmv_f_s(31);

  // Reciprocal once on the vector divider, then normalize.
  pb.vsetvli(1, Sew::k64, kLmul1);
  pb.vfmv_s_f(28, 1.0);
  pb.vfdiv_vv(28, 28, 31);
  pb.vfmv_f_s(28);
  for (std::uint64_t done = 0; done < n;) {
    const std::uint64_t vl = pb.vsetvli(n - done, Sew::k64, kLmul8);
    pb.vle(8, e_addr + done * 8);
    pb.vfmul_vf_acc(16, 8);
    pb.vse(16, y_addr + done * 8);
    pb.scalar_cycles(2);
    done += vl;
  }

  const RunStats stats = m.run(pb.take());

  // Scalar reference.
  double mx = -std::numeric_limits<double>::infinity();
  for (const double v : logits) mx = std::max(mx, v);
  double sum = 0.0;
  for (const double v : logits) sum += std::exp(v - mx);
  const std::vector<double> got = m.mem().load_doubles(y_addr, n);
  double max_err = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    max_err = std::max(max_err, std::abs(got[i] - std::exp(logits[i] - mx) / sum));
  }

  const double f = FreqModel().freq_ghz(cfg);
  std::printf("softmax over a %llu-element context on %s\n\n",
              static_cast<unsigned long long>(n), cfg.name().c_str());
  std::printf("%s", stats.summary().c_str());
  std::printf("\nat %.2f GHz: %.1f us per attention row, %.1f GFLOPS\n",
              f, static_cast<double>(stats.cycles) / (f * 1e3), stats.gflops(f));
  std::printf("max abs error vs scalar reference: %.3g\n", max_err);
  return max_err < 1e-10 ? 0 : 1;
}
