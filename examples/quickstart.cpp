// Quickstart: build a 16-lane AraXL, run a vector AXPY through the public
// API, verify the result, and print the run statistics.
//
//   y[i] = a * x[i] + y[i]   over 64 KiB of doubles
#include <cmath>
#include <cstdio>
#include <vector>

#include "isa/program.hpp"
#include "kernels/common.hpp"
#include "machine/machine.hpp"

int main() {
  using namespace araxl;

  // A 16-lane AraXL: 4 clusters x 4 lanes, VLEN = 16 Kibit.
  const MachineConfig cfg = MachineConfig::araxl(16);
  Machine m(cfg);

  const std::uint64_t n = 8192;
  const double a = 1.5;
  const std::vector<double> x = random_doubles(n, -1.0, 1.0, 1);
  const std::vector<double> y = random_doubles(n, -1.0, 1.0, 2);

  MemLayout layout;
  const std::uint64_t x_addr = layout.alloc(n * 8);
  const std::uint64_t y_addr = layout.alloc(n * 8);
  m.mem().store_doubles(x_addr, x);
  m.mem().store_doubles(y_addr, y);

  // AXPY, strip-mined over the vector length the hardware grants.
  ProgramBuilder pb(cfg.effective_vlen(), "axpy");
  std::uint64_t done = 0;
  while (done < n) {
    const std::uint64_t vl = pb.vsetvli(n - done, Sew::k64, kLmul4);
    pb.vle(8, x_addr + done * 8);   // v8  = x[done ...]
    pb.vle(16, y_addr + done * 8);  // v16 = y[done ...]
    pb.vfmacc_vf(16, a, 8);         // v16 += a * v8
    pb.vse(16, y_addr + done * 8);
    pb.scalar_cycles(2);
    done += vl;
  }

  const RunStats stats = m.run(pb.take());

  // Verify against the scalar reference.
  const std::vector<double> got = m.mem().load_doubles(y_addr, n);
  double max_err = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    max_err = std::max(max_err, std::abs(std::fma(a, x[i], y[i]) - got[i]));
  }

  std::printf("AXPY over %llu doubles on %s\n",
              static_cast<unsigned long long>(n), cfg.name().c_str());
  std::printf("%s", stats.summary().c_str());
  std::printf("max abs error vs reference: %.3g  (%s)\n", max_err,
              max_err == 0.0 ? "exact" : "check");
  return max_err == 0.0 ? 0 : 1;
}
