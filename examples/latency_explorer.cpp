// Latency explorer: an interactive-style tool that sweeps memory latency
// and interface register cuts on any kernel and reports the utilization
// surface — the generalization of the paper's Fig. 7 study, useful when
// exploring deeper pipelining of the AraXL interfaces.
//
// Both surfaces are declarative sweeps over the experiment driver
// (src/driver/), executed by the worker pool.
//
// Usage: latency_explorer [kernel] [bytes-per-lane]
//        (defaults: fdotproduct 512)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/contracts.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"
#include "driver/job.hpp"
#include "driver/runner.hpp"
#include "machine/machine.hpp"

using namespace araxl;

namespace {

/// Runs `spec` on all cores and returns fpu_util keyed by config label.
std::vector<std::pair<std::string, double>> utilization_surface(
    const driver::SweepSpec& spec) {
  driver::RunnerOptions opts;
  opts.workers = 0;  // all hardware threads
  std::vector<std::pair<std::string, double>> out;
  for (const driver::JobResult& r : driver::run_sweep(spec, opts)) {
    check(r.ok, "latency_explorer job failed: " + r.error);
    out.emplace_back(r.job.config_label, r.stats.fpu_util());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kernel = argc > 1 ? argv[1] : "fdotproduct";
  const std::uint64_t bpl = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 512;

  std::printf("latency tolerance surface: %s at %llu B/lane on 64L AraXL\n\n",
              kernel.c_str(), static_cast<unsigned long long>(bpl));

  // Sweep 1: L2 latency (the tolerance that lets AraXL relax its
  // interconnect timing in the first place).
  {
    driver::SweepSpec spec;
    for (const unsigned lat : {12u, 4u, 24u, 48u, 96u}) {
      MachineConfig cfg = MachineConfig::araxl(64);
      cfg.l2_latency = lat;
      spec.configs.push_back({"L2=" + std::to_string(lat), cfg});
    }
    spec.kernels = {kernel};
    spec.bytes_per_lane = {bpl};
    const auto surface = utilization_surface(spec);
    const double base = surface[0].second;  // L2=12, the model default

    TextTable t({"L2 latency [cycles]", "FPU util", "drop vs 12"});
    t.align_right(1);
    t.align_right(2);
    for (const auto& [label, util] : surface) {
      t.add_row({label.substr(3), fmt_pct(util, 1), fmt_pct(base - util, 1)});
    }
    std::printf("%s\n", t.render().c_str());
  }

  // Sweep 2: interface register cuts (the paper's Fig. 7 axes, extended).
  {
    driver::SweepSpec spec;
    spec.configs.push_back({"(baseline):0", MachineConfig::araxl(64)});
    for (const unsigned regs : {1u, 2u, 4u, 8u}) {
      for (int which = 0; which < 3; ++which) {
        MachineConfig cfg = MachineConfig::araxl(64);
        const char* name = which == 0 ? "GLSU" : which == 1 ? "REQI" : "RINGI";
        (which == 0 ? cfg.glsu_regs : which == 1 ? cfg.reqi_regs : cfg.ring_regs) =
            regs;
        spec.configs.push_back(
            {std::string(name) + ":" + std::to_string(regs), cfg});
      }
    }
    spec.kernels = {kernel};
    spec.bytes_per_lane = {bpl};
    const auto surface = utilization_surface(spec);
    const double base = surface[0].second;

    TextTable t({"interface", "+regs", "FPU util", "drop"});
    t.align_right(1);
    t.align_right(2);
    t.align_right(3);
    t.add_row({"(baseline)", "0", fmt_pct(base, 1), "-"});
    for (std::size_t i = 1; i < surface.size(); ++i) {
      const auto& [label, util] = surface[i];
      const std::size_t colon = label.find(':');
      t.add_row({label.substr(0, colon), label.substr(colon + 1),
                 fmt_pct(util, 1), fmt_pct(base - util, 1)});
    }
    std::printf("%s", t.render().c_str());
  }
  return 0;
}
