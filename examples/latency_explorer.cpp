// Latency explorer: an interactive-style tool that sweeps memory latency
// and interface register cuts on any kernel and reports the utilization
// surface — the generalization of the paper's Fig. 7 study, useful when
// exploring deeper pipelining of the AraXL interfaces.
//
// Usage: latency_explorer [kernel] [bytes-per-lane]
//        (defaults: fdotproduct 512)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/fmt.hpp"
#include "common/table.hpp"
#include "kernels/common.hpp"
#include "machine/machine.hpp"

using namespace araxl;

namespace {

double run_util(MachineConfig cfg, const std::string& kernel, std::uint64_t bpl) {
  Machine m(cfg);
  auto k = make_kernel(kernel);
  const Program p = k->build(m, bpl);
  return m.run(p).fpu_util();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kernel = argc > 1 ? argv[1] : "fdotproduct";
  const std::uint64_t bpl = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 512;

  std::printf("latency tolerance surface: %s at %llu B/lane on 64L AraXL\n\n",
              kernel.c_str(), static_cast<unsigned long long>(bpl));

  // Sweep 1: L2 latency (the tolerance that lets AraXL relax its
  // interconnect timing in the first place).
  {
    TextTable t({"L2 latency [cycles]", "FPU util", "drop vs 12"});
    t.align_right(1);
    t.align_right(2);
    MachineConfig cfg = MachineConfig::araxl(64);
    const double base = run_util(cfg, kernel, bpl);
    for (const unsigned lat : {4u, 12u, 24u, 48u, 96u}) {
      cfg.l2_latency = lat;
      const double u = run_util(cfg, kernel, bpl);
      t.add_row({std::to_string(lat), fmt_pct(u, 1), fmt_pct(base - u, 1)});
    }
    std::printf("%s\n", t.render().c_str());
  }

  // Sweep 2: interface register cuts (the paper's Fig. 7 axes, extended).
  {
    TextTable t({"interface", "+regs", "FPU util", "drop"});
    t.align_right(1);
    t.align_right(2);
    t.align_right(3);
    const double base = run_util(MachineConfig::araxl(64), kernel, bpl);
    t.add_row({"(baseline)", "0", fmt_pct(base, 1), "-"});
    for (const unsigned regs : {1u, 2u, 4u, 8u}) {
      for (int which = 0; which < 3; ++which) {
        MachineConfig cfg = MachineConfig::araxl(64);
        const char* name = which == 0 ? "GLSU" : which == 1 ? "REQI" : "RINGI";
        (which == 0 ? cfg.glsu_regs : which == 1 ? cfg.reqi_regs : cfg.ring_regs) =
            regs;
        const double u = run_util(cfg, kernel, bpl);
        t.add_row({name, std::to_string(regs), fmt_pct(u, 1),
                   fmt_pct(base - u, 1)});
      }
    }
    std::printf("%s", t.render().c_str());
  }
  return 0;
}
