// Matmul scaling demo: runs the paper's flagship fmatmul kernel across
// AraXL configurations in the long-vector regime and reports cycles, FPU
// utilization and projected GFLOPS (simulator cycles x frequency model) —
// the experiment behind the paper's "146 GFLOPs at 64 lanes" headline.
#include <cstdio>

#include "common/fmt.hpp"
#include "common/table.hpp"
#include "kernels/common.hpp"
#include "machine/machine.hpp"
#include "ppa/area_model.hpp"
#include "ppa/freq_model.hpp"
#include "ppa/power_model.hpp"

int main() {
  using namespace araxl;

  const FreqModel freq;
  const PowerModel power;

  TextTable table({"config", "N", "cycles", "FPU util", "freq", "GFLOPS",
                   "W", "GFLOPS/W"});
  for (std::size_t c = 1; c < 8; ++c) table.align_right(c);

  for (const unsigned lanes : {8u, 16u, 32u, 64u}) {
    const MachineConfig cfg = MachineConfig::araxl(lanes);
    Machine m(cfg);
    auto kernel = make_kernel("fmatmul");
    const Program prog = kernel->build(m, 512);  // long-vector regime
    const RunStats stats = m.run(prog);
    const VerifyResult vr = kernel->verify(m);
    check(vr.ok(kernel->tolerance()), "fmatmul verification failed");

    const double f = freq.freq_ghz(cfg);
    const double gflops = stats.gflops(f);
    const double watts = power.power_w(cfg, f, stats.fpu_util());
    table.add_row({cfg.name(), std::to_string(64 * lanes),
                   fmt_group(stats.cycles), fmt_pct(stats.fpu_util(), 1),
                   fmt_f(f, 2) + " GHz", fmt_f(gflops, 1), fmt_f(watts, 2),
                   fmt_f(gflops / watts, 1)});
  }

  std::printf("fmatmul C[64xN] = A[64x256] x B[256xN] at 512 B/lane "
              "(weak scaling)\n\n%s\n",
              table.render().c_str());
  std::printf("paper headline: 146 GFLOPs and 40.1 GFLOPS/W at 64 lanes "
              "(1.15 GHz, TT, 0.8 V)\n");
  return 0;
}
